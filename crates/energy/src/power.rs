//! Rotor and compute power models.
//!
//! The rotor model implements the parametric power estimation of the paper's
//! Eq. 1 (after Tseng et al.): three inner products over horizontal speed and
//! acceleration, vertical speed and acceleration, and a payload/wind/constant
//! group. The default coefficients are calibrated so that a 3DR-Solo-class
//! vehicle hovers at ≈287 W, matching the paper's wattmeter measurement
//! (Fig. 9a), and so that power grows with both speed and acceleration.
//!
//! The compute model approximates an NVIDIA TX2-class companion computer:
//! an idle floor plus a per-core dynamic term that scales quadratically with
//! clock frequency, calibrated to ≈13 W at 4 cores / 2.2 GHz (Fig. 9a).

use mav_types::{Power, Vec3};
use serde::{Deserialize, Serialize};

/// Coefficients of the paper's Eq. 1 rotor power model.
///
/// `P = (β1, β2, β3)·(‖v_xy‖, ‖a_xy‖, ‖v_xy‖‖a_xy‖)
///    + (β4, β5, β6)·(‖v_z‖, ‖a_z‖, ‖v_z‖‖a_z‖)
///    + (β7, β8, β9)·(m, v_xy·w_xy, 1)`
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCoefficients {
    /// Weight of horizontal speed, W/(m/s).
    pub beta1: f64,
    /// Weight of horizontal acceleration, W/(m/s²).
    pub beta2: f64,
    /// Weight of the product of horizontal speed and acceleration.
    pub beta3: f64,
    /// Weight of vertical speed, W/(m/s).
    pub beta4: f64,
    /// Weight of vertical acceleration, W/(m/s²).
    pub beta5: f64,
    /// Weight of the product of vertical speed and acceleration.
    pub beta6: f64,
    /// Weight of vehicle mass, W/kg.
    pub beta7: f64,
    /// Weight of the head-wind term (v_xy · w_xy), W/(m²/s²).
    pub beta8: f64,
    /// Constant term, W.
    pub beta9: f64,
}

impl Default for PowerCoefficients {
    fn default() -> Self {
        // Calibrated so that a 1.8 kg 3DR Solo hovers at ~286.8 W and a
        // 2.43 kg Matrice-class vehicle at ~325 W, with power rising by
        // ~6 W per m/s of horizontal speed and ~9 W per m/s² of acceleration.
        PowerCoefficients {
            beta1: 6.0,
            beta2: 9.0,
            beta3: 1.2,
            beta4: 24.0,
            beta5: 41.0,
            beta6: 2.2,
            beta7: 60.5,
            beta8: 1.0,
            beta9: 177.9,
        }
    }
}

/// Rotor (locomotion) power model.
///
/// # Example
///
/// ```
/// use mav_energy::RotorPowerModel;
/// use mav_types::Vec3;
///
/// let model = RotorPowerModel::solo_3dr();
/// let hover = model.power(&Vec3::ZERO, &Vec3::ZERO, &Vec3::ZERO);
/// let cruise = model.power(&Vec3::new(10.0, 0.0, 0.0), &Vec3::ZERO, &Vec3::ZERO);
/// assert!(cruise > hover);
/// assert!((hover.as_watts() - 286.8).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RotorPowerModel {
    coefficients: PowerCoefficients,
    mass: f64,
}

impl RotorPowerModel {
    /// Creates a model from coefficients and vehicle mass (kg).
    ///
    /// # Panics
    ///
    /// Panics if `mass` is not strictly positive.
    pub fn new(coefficients: PowerCoefficients, mass: f64) -> Self {
        assert!(mass > 0.0, "vehicle mass must be positive, got {mass}");
        RotorPowerModel { coefficients, mass }
    }

    /// Model calibrated for the 3DR Solo (1.8 kg), the paper's measurement
    /// platform.
    pub fn solo_3dr() -> Self {
        RotorPowerModel::new(PowerCoefficients::default(), 1.8)
    }

    /// Model calibrated for the DJI Matrice 100 (2.43 kg), the paper's
    /// heat-map platform.
    pub fn dji_matrice_100() -> Self {
        RotorPowerModel::new(PowerCoefficients::default(), 2.431)
    }

    /// Vehicle mass in kilograms.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Instantaneous rotor power for the given velocity, acceleration and
    /// wind (all world-frame, m/s and m/s²).
    pub fn power(&self, velocity: &Vec3, acceleration: &Vec3, wind: &Vec3) -> Power {
        let c = &self.coefficients;
        let vxy = velocity.norm_xy();
        let axy = acceleration.norm_xy();
        let vz = velocity.z.abs();
        let az = acceleration.z.abs();
        let wind_term = velocity.horizontal().dot(&wind.horizontal());
        let p = c.beta1 * vxy
            + c.beta2 * axy
            + c.beta3 * vxy * axy
            + c.beta4 * vz
            + c.beta5 * az
            + c.beta6 * vz * az
            + c.beta7 * self.mass
            + c.beta8 * wind_term
            + c.beta9;
        Power::from_watts(p)
    }

    /// Hover power: zero velocity, zero acceleration, no wind.
    pub fn hover_power(&self) -> Power {
        self.power(&Vec3::ZERO, &Vec3::ZERO, &Vec3::ZERO)
    }
}

impl Default for RotorPowerModel {
    fn default() -> Self {
        RotorPowerModel::dji_matrice_100()
    }
}

/// Companion-computer (TX2-class) power model.
///
/// Power is `idle + cores × per_core × (f / f_ref)²`, calibrated to ≈13 W at
/// the 4-core / 2.2 GHz reference operating point.
///
/// # Example
///
/// ```
/// use mav_energy::ComputePowerModel;
/// let tx2 = ComputePowerModel::tx2();
/// let full = tx2.power(4, 2.2);
/// let slow = tx2.power(2, 0.8);
/// assert!(full.as_watts() > slow.as_watts());
/// assert!((full.as_watts() - 13.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputePowerModel {
    /// Idle (leakage + uncore) power, watts.
    pub idle_watts: f64,
    /// Dynamic power per active core at the reference frequency, watts.
    pub per_core_watts: f64,
    /// Reference frequency in GHz for the per-core figure.
    pub reference_ghz: f64,
}

impl ComputePowerModel {
    /// An NVIDIA Jetson TX2-class model (≈13 W at 4 cores / 2.2 GHz).
    pub fn tx2() -> Self {
        ComputePowerModel {
            idle_watts: 2.0,
            per_core_watts: 2.75,
            reference_ghz: 2.2,
        }
    }

    /// Power at the given core count and clock frequency (GHz).
    pub fn power(&self, cores: u32, frequency_ghz: f64) -> Power {
        let ratio = (frequency_ghz / self.reference_ghz).max(0.0);
        Power::from_watts(self.idle_watts + cores as f64 * self.per_core_watts * ratio * ratio)
    }
}

impl Default for ComputePowerModel {
    fn default() -> Self {
        ComputePowerModel::tx2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hover_power_matches_calibration() {
        let solo = RotorPowerModel::solo_3dr();
        assert!((solo.hover_power().as_watts() - 286.8).abs() < 1.0);
        let matrice = RotorPowerModel::dji_matrice_100();
        assert!(matrice.hover_power().as_watts() > solo.hover_power().as_watts());
    }

    #[test]
    fn power_increases_with_speed_and_acceleration() {
        let m = RotorPowerModel::default();
        let hover = m.hover_power().as_watts();
        let slow = m
            .power(&Vec3::new(2.0, 0.0, 0.0), &Vec3::ZERO, &Vec3::ZERO)
            .as_watts();
        let fast = m
            .power(&Vec3::new(10.0, 0.0, 0.0), &Vec3::ZERO, &Vec3::ZERO)
            .as_watts();
        let accel = m
            .power(
                &Vec3::new(10.0, 0.0, 0.0),
                &Vec3::new(3.0, 0.0, 0.0),
                &Vec3::ZERO,
            )
            .as_watts();
        assert!(hover < slow && slow < fast && fast < accel);
    }

    #[test]
    fn vertical_motion_costs_more_than_horizontal() {
        let m = RotorPowerModel::default();
        let horizontal = m.power(&Vec3::new(3.0, 0.0, 0.0), &Vec3::ZERO, &Vec3::ZERO);
        let vertical = m.power(&Vec3::new(0.0, 0.0, 3.0), &Vec3::ZERO, &Vec3::ZERO);
        assert!(vertical > horizontal);
    }

    #[test]
    fn headwind_increases_power_tailwind_decreases() {
        let m = RotorPowerModel::default();
        let v = Vec3::new(5.0, 0.0, 0.0);
        let no_wind = m.power(&v, &Vec3::ZERO, &Vec3::ZERO);
        let tail = m.power(&v, &Vec3::ZERO, &Vec3::new(-2.0, 0.0, 0.0));
        let head = m.power(&v, &Vec3::ZERO, &Vec3::new(2.0, 0.0, 0.0));
        assert!(head > no_wind);
        assert!(tail < no_wind);
    }

    #[test]
    fn rotor_power_dominates_compute_by_20x() {
        // The paper's key observation: rotors consume ~20X the compute power.
        let rotor = RotorPowerModel::solo_3dr().hover_power().as_watts();
        let compute = ComputePowerModel::tx2().power(4, 2.2).as_watts();
        assert!(rotor / compute > 20.0, "rotor {rotor} vs compute {compute}");
    }

    #[test]
    fn compute_power_scales_with_cores_and_frequency() {
        let m = ComputePowerModel::tx2();
        assert!(m.power(4, 2.2) > m.power(2, 2.2));
        assert!(m.power(4, 2.2) > m.power(4, 0.8));
        assert!(m.power(0, 2.2).as_watts() >= m.idle_watts - 1e-9);
        // Frequency scaling is quadratic: 0.8/2.2 ratio squared ≈ 0.13.
        let full = m.power(4, 2.2).as_watts() - m.idle_watts;
        let slow = m.power(4, 0.8).as_watts() - m.idle_watts;
        assert!((slow / full - (0.8f64 / 2.2).powi(2)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_mass_rejected() {
        let _ = RotorPowerModel::new(PowerCoefficients::default(), 0.0);
    }
}
