//! Catalogue of commercial MAVs used to reproduce the paper's Fig. 2
//! (endurance vs battery capacity, size vs battery capacity).

use serde::{Deserialize, Serialize};

/// Fixed or rotor wing, the distinction Fig. 2a highlights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WingType {
    /// Fixed-wing airframe (can glide; longer endurance per mAh).
    Fixed,
    /// Rotor-wing airframe (vertical take-off; shorter endurance per mAh).
    Rotor,
}

/// One commercial MAV data point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommercialMav {
    /// Product name.
    pub name: &'static str,
    /// Wing type.
    pub wing: WingType,
    /// Battery capacity, mAh.
    pub battery_mah: f64,
    /// Characteristic size (diagonal / wingspan), millimetres.
    pub size_mm: f64,
    /// Manufacturer-quoted endurance, minutes.
    pub endurance_minutes: f64,
    /// Rough market segment used for grouping in Fig. 2b.
    pub segment: &'static str,
}

impl CommercialMav {
    /// Endurance in hours (the unit of Fig. 2a).
    pub fn endurance_hours(&self) -> f64 {
        self.endurance_minutes / 60.0
    }

    /// Endurance per unit battery capacity, hours per Ah — fixed wings score
    /// higher than rotor wings here, which is the point of Fig. 2a.
    pub fn endurance_per_ah(&self) -> f64 {
        self.endurance_hours() / (self.battery_mah / 1000.0)
    }
}

/// The catalogue of popular MAVs the figure is drawn from (public spec
/// sheets; values rounded).
pub fn commercial_mav_catalog() -> Vec<CommercialMav> {
    vec![
        CommercialMav {
            name: "Parrot Disco FPV",
            wing: WingType::Fixed,
            battery_mah: 2700.0,
            size_mm: 1150.0,
            endurance_minutes: 45.0,
            segment: "fixed-wing",
        },
        CommercialMav {
            name: "Parrot Bebop 2 Power",
            wing: WingType::Rotor,
            battery_mah: 3350.0,
            size_mm: 328.0,
            endurance_minutes: 30.0,
            segment: "camera",
        },
        CommercialMav {
            name: "DJI Spark",
            wing: WingType::Rotor,
            battery_mah: 1480.0,
            size_mm: 170.0,
            endurance_minutes: 16.0,
            segment: "camera",
        },
        CommercialMav {
            name: "DJI Mavic Pro",
            wing: WingType::Rotor,
            battery_mah: 3830.0,
            size_mm: 335.0,
            endurance_minutes: 27.0,
            segment: "camera",
        },
        CommercialMav {
            name: "DJI Phantom 4 Pro",
            wing: WingType::Rotor,
            battery_mah: 5870.0,
            size_mm: 350.0,
            endurance_minutes: 30.0,
            segment: "camera",
        },
        CommercialMav {
            name: "DJI Matrice 100",
            wing: WingType::Rotor,
            battery_mah: 4500.0,
            size_mm: 650.0,
            endurance_minutes: 22.0,
            segment: "developer",
        },
        CommercialMav {
            name: "3DR Solo",
            wing: WingType::Rotor,
            battery_mah: 5200.0,
            size_mm: 460.0,
            endurance_minutes: 20.0,
            segment: "camera",
        },
        CommercialMav {
            name: "DJI Inspire 2",
            wing: WingType::Rotor,
            battery_mah: 4280.0,
            size_mm: 605.0,
            endurance_minutes: 27.0,
            segment: "cinema",
        },
        CommercialMav {
            name: "Walkera F210 (racing)",
            wing: WingType::Rotor,
            battery_mah: 1300.0,
            size_mm: 210.0,
            endurance_minutes: 9.0,
            segment: "racing",
        },
        CommercialMav {
            name: "TBS Vendetta (racing)",
            wing: WingType::Rotor,
            battery_mah: 1500.0,
            size_mm: 240.0,
            endurance_minutes: 8.0,
            segment: "racing",
        },
        CommercialMav {
            name: "Yuneec Typhoon H",
            wing: WingType::Rotor,
            battery_mah: 5400.0,
            size_mm: 520.0,
            endurance_minutes: 25.0,
            segment: "camera",
        },
        CommercialMav {
            name: "senseFly eBee (fixed)",
            wing: WingType::Fixed,
            battery_mah: 2150.0,
            size_mm: 960.0,
            endurance_minutes: 50.0,
            segment: "fixed-wing",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_nontrivial() {
        let cat = commercial_mav_catalog();
        assert!(cat.len() >= 10);
        assert!(cat.iter().any(|m| m.wing == WingType::Fixed));
        assert!(cat.iter().any(|m| m.wing == WingType::Rotor));
    }

    #[test]
    fn endurance_correlates_with_battery_capacity_for_rotor_wings() {
        // Fig. 2a: within rotor wings, larger batteries generally mean longer
        // endurance. Compare the mean endurance of the top and bottom halves
        // by capacity.
        let mut rotors: Vec<CommercialMav> = commercial_mav_catalog()
            .into_iter()
            .filter(|m| m.wing == WingType::Rotor)
            .collect();
        // total_cmp ≡ partial_cmp().unwrap() for the strictly positive
        // finite capacities in the catalog, and cannot panic.
        rotors.sort_by(|a, b| a.battery_mah.total_cmp(&b.battery_mah));
        let half = rotors.len() / 2;
        let low: f64 = rotors[..half]
            .iter()
            .map(|m| m.endurance_minutes)
            .sum::<f64>()
            / half as f64;
        let high: f64 = rotors[half..]
            .iter()
            .map(|m| m.endurance_minutes)
            .sum::<f64>()
            / (rotors.len() - half) as f64;
        assert!(
            high > low,
            "endurance should rise with battery capacity: {low} vs {high}"
        );
    }

    #[test]
    fn fixed_wings_have_better_endurance_per_capacity() {
        // Fig. 2a: the Disco FPV (fixed) beats the Bebop 2 Power (rotor) at a
        // similar battery capacity.
        let cat = commercial_mav_catalog();
        let disco = cat.iter().find(|m| m.name.contains("Disco")).unwrap();
        let bebop = cat.iter().find(|m| m.name.contains("Bebop")).unwrap();
        assert!(disco.endurance_per_ah() > bebop.endurance_per_ah());
        assert!(disco.endurance_hours() > bebop.endurance_hours());
    }

    #[test]
    fn racing_drones_are_small_with_small_batteries() {
        // Fig. 2b: racing drones cluster at small size and small capacity.
        let cat = commercial_mav_catalog();
        for m in cat.iter().filter(|m| m.segment == "racing") {
            assert!(m.size_mm < 300.0);
            assert!(m.battery_mah < 2000.0);
        }
    }

    #[test]
    fn typical_rotor_endurance_is_under_20_to_30_minutes() {
        // Matches the paper's claim that off-the-shelf endurance is typically
        // well under half an hour.
        for m in commercial_mav_catalog()
            .iter()
            .filter(|m| m.wing == WingType::Rotor)
        {
            assert!(m.endurance_minutes <= 30.0);
        }
    }
}
