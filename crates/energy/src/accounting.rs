//! Mission energy accounting: per-subsystem power integration and the power
//! traces behind the paper's Fig. 9.

use mav_dynamics_phase::FlightPhaseLabel;
use mav_types::{Energy, Power, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimal mirror of the flight phase used for labelling power samples without
/// depending on the dynamics crate (the energy crate sits below it in the
/// dependency graph).
pub mod mav_dynamics_phase {
    use serde::{Deserialize, Serialize};

    /// Label attached to each power sample in a mission trace.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
    pub enum FlightPhaseLabel {
        /// Motors arming on the ground.
        Arming,
        /// Holding position.
        Hovering,
        /// Translating.
        Flying,
        /// Descending to land.
        Landing,
        /// Any other state (idle/landed).
        Ground,
    }

    impl std::fmt::Display for FlightPhaseLabel {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let s = match self {
                FlightPhaseLabel::Arming => "arming",
                FlightPhaseLabel::Hovering => "hovering",
                FlightPhaseLabel::Flying => "flying",
                FlightPhaseLabel::Landing => "landing",
                FlightPhaseLabel::Ground => "ground",
            };
            f.write_str(s)
        }
    }
}

/// One sample of the mission power trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Mission time of the sample.
    pub time: SimTime,
    /// Rotor power at this instant.
    pub rotor: Power,
    /// Companion-computer power at this instant.
    pub compute: Power,
    /// Other electronics (flight controller, sensors), watts.
    pub other: Power,
    /// Flight phase during this sample.
    pub phase: FlightPhaseLabel,
}

impl PowerSample {
    /// Total system power at this instant.
    pub fn total(&self) -> Power {
        self.rotor + self.compute + self.other
    }
}

/// Aggregate energy split by subsystem plus the raw trace.
///
/// # Example
///
/// ```
/// use mav_energy::{EnergyAccount, FlightPhaseLabel};
/// use mav_types::{Power, SimDuration, SimTime};
///
/// let mut account = EnergyAccount::new();
/// account.record(
///     SimTime::ZERO,
///     SimDuration::from_secs(10.0),
///     Power::from_watts(300.0),
///     Power::from_watts(10.0),
///     FlightPhaseLabel::Flying,
/// );
/// assert!(account.rotor_fraction() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyAccount {
    rotor_energy: Energy,
    compute_energy: Energy,
    other_energy: Energy,
    trace: Vec<PowerSample>,
    /// Constant draw of the flight controller and sensors, watts.
    pub other_watts: f64,
}

impl EnergyAccount {
    /// Creates an empty account with a 2 W "other electronics" draw
    /// (flight controller + sensors), matching the paper's power pie.
    pub fn new() -> Self {
        EnergyAccount {
            other_watts: 2.0,
            ..Default::default()
        }
    }

    /// Records one interval of the mission.
    pub fn record(
        &mut self,
        time: SimTime,
        dt: SimDuration,
        rotor: Power,
        compute: Power,
        phase: FlightPhaseLabel,
    ) {
        let other = Power::from_watts(self.other_watts);
        self.rotor_energy += rotor.over(dt);
        self.compute_energy += compute.over(dt);
        self.other_energy += other.over(dt);
        self.trace.push(PowerSample {
            time,
            rotor,
            compute,
            other,
            phase,
        });
    }

    /// Total energy consumed by the rotors.
    pub fn rotor_energy(&self) -> Energy {
        self.rotor_energy
    }

    /// Total energy consumed by the companion computer.
    pub fn compute_energy(&self) -> Energy {
        self.compute_energy
    }

    /// Total energy consumed by the other electronics.
    pub fn other_energy(&self) -> Energy {
        self.other_energy
    }

    /// Total system energy.
    pub fn total_energy(&self) -> Energy {
        self.rotor_energy + self.compute_energy + self.other_energy
    }

    /// Fraction of the total energy that went to the rotors.
    pub fn rotor_fraction(&self) -> f64 {
        self.rotor_energy.fraction_of(self.total_energy())
    }

    /// Fraction of the total energy that went to compute.
    pub fn compute_fraction(&self) -> f64 {
        self.compute_energy.fraction_of(self.total_energy())
    }

    /// The full power trace.
    pub fn trace(&self) -> &[PowerSample] {
        &self.trace
    }

    /// Average total power over the trace (simple sample mean).
    pub fn average_total_power(&self) -> Power {
        if self.trace.is_empty() {
            return Power::ZERO;
        }
        let sum: f64 = self.trace.iter().map(|s| s.total().as_watts()).sum();
        Power::from_watts(sum / self.trace.len() as f64)
    }

    /// Average total power during a specific flight phase, or `None` when the
    /// phase never occurred.
    pub fn average_power_in_phase(&self, phase: FlightPhaseLabel) -> Option<Power> {
        let samples: Vec<&PowerSample> = self.trace.iter().filter(|s| s.phase == phase).collect();
        if samples.is_empty() {
            return None;
        }
        let sum: f64 = samples.iter().map(|s| s.total().as_watts()).sum();
        Some(Power::from_watts(sum / samples.len() as f64))
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy[total {} | rotors {:.1}% compute {:.1}%]",
            self.total_energy(),
            self.rotor_fraction() * 100.0,
            self.compute_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_account() -> EnergyAccount {
        let mut acc = EnergyAccount::new();
        let mut t = SimTime::ZERO;
        let dt = SimDuration::from_secs(1.0);
        for i in 0..60 {
            let phase = if i < 5 {
                FlightPhaseLabel::Arming
            } else if i < 15 {
                FlightPhaseLabel::Hovering
            } else if i < 55 {
                FlightPhaseLabel::Flying
            } else {
                FlightPhaseLabel::Landing
            };
            let rotor = match phase {
                FlightPhaseLabel::Arming => Power::from_watts(80.0),
                FlightPhaseLabel::Hovering => Power::from_watts(287.0),
                FlightPhaseLabel::Flying => Power::from_watts(330.0),
                FlightPhaseLabel::Landing => Power::from_watts(250.0),
                FlightPhaseLabel::Ground => Power::ZERO,
            };
            acc.record(t, dt, rotor, Power::from_watts(13.0), phase);
            t += dt;
        }
        acc
    }

    #[test]
    fn rotors_dominate_the_energy_pie() {
        let acc = filled_account();
        assert!(acc.rotor_fraction() > 0.9);
        assert!(acc.compute_fraction() < 0.06);
        assert!(acc.total_energy() > acc.rotor_energy());
        assert_eq!(acc.trace().len(), 60);
    }

    #[test]
    fn per_phase_power_ordering() {
        let acc = filled_account();
        let hover = acc
            .average_power_in_phase(FlightPhaseLabel::Hovering)
            .unwrap();
        let fly = acc
            .average_power_in_phase(FlightPhaseLabel::Flying)
            .unwrap();
        let arm = acc
            .average_power_in_phase(FlightPhaseLabel::Arming)
            .unwrap();
        assert!(fly > hover);
        assert!(hover > arm);
        assert!(acc
            .average_power_in_phase(FlightPhaseLabel::Ground)
            .is_none());
    }

    #[test]
    fn energy_is_power_times_time() {
        let mut acc = EnergyAccount::new();
        acc.record(
            SimTime::ZERO,
            SimDuration::from_secs(100.0),
            Power::from_watts(300.0),
            Power::from_watts(10.0),
            FlightPhaseLabel::Flying,
        );
        assert!((acc.rotor_energy().as_kilojoules() - 30.0).abs() < 1e-9);
        assert!((acc.compute_energy().as_kilojoules() - 1.0).abs() < 1e-9);
        assert!((acc.other_energy().as_joules() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_account_is_well_behaved() {
        let acc = EnergyAccount::new();
        assert_eq!(acc.total_energy(), Energy::ZERO);
        assert_eq!(acc.rotor_fraction(), 0.0);
        assert_eq!(acc.average_total_power(), Power::ZERO);
        assert!(acc.trace().is_empty());
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", filled_account()).is_empty());
        assert!(!format!("{}", FlightPhaseLabel::Flying).is_empty());
    }
}
