//! Coulomb-counting battery model.
//!
//! The simulator tracks how many coulombs have passed through the battery
//! each cycle (current × time) and models the terminal voltage as a function
//! of the remaining state of charge, following the approach the paper cites
//! (a coulomb counter with a voltage-vs-SoC curve after Chen & Rincón-Mora).

use mav_types::{Energy, Power, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static parameters of a LiPo flight battery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryConfig {
    /// Rated capacity in milliamp-hours.
    pub capacity_mah: f64,
    /// Number of series cells (e.g. 4 for a 4S pack).
    pub cells: u32,
    /// Fully-charged per-cell voltage, volts.
    pub cell_full_voltage: f64,
    /// Cut-off per-cell voltage below which the pack is considered exhausted.
    pub cell_empty_voltage: f64,
    /// Nominal per-cell voltage used for energy-capacity conversions.
    pub cell_nominal_voltage: f64,
}

impl BatteryConfig {
    /// The DJI Matrice 100 TB47D pack: 4500 mAh, 6S.
    pub fn matrice_tb47() -> Self {
        BatteryConfig {
            capacity_mah: 4500.0,
            cells: 6,
            cell_full_voltage: 4.2,
            cell_empty_voltage: 3.3,
            cell_nominal_voltage: 3.7,
        }
    }

    /// The 3DR Solo smart battery: 5200 mAh, 4S.
    pub fn solo_smart_battery() -> Self {
        BatteryConfig {
            capacity_mah: 5200.0,
            cells: 4,
            cell_full_voltage: 4.2,
            cell_empty_voltage: 3.3,
            cell_nominal_voltage: 3.7,
        }
    }

    /// Full-pack nominal voltage, volts.
    pub fn nominal_voltage(&self) -> f64 {
        self.cells as f64 * self.cell_nominal_voltage
    }

    /// Total charge capacity in coulombs.
    pub fn capacity_coulombs(&self) -> f64 {
        self.capacity_mah * 3.6 // mAh → C
    }

    /// Total energy capacity at the nominal voltage.
    pub fn capacity_energy(&self) -> Energy {
        Energy::from_mah(self.capacity_mah, self.nominal_voltage())
    }
}

impl Default for BatteryConfig {
    fn default() -> Self {
        BatteryConfig::matrice_tb47()
    }
}

impl mav_types::ToJson for BatteryConfig {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::object()
            .field("capacity_mah", self.capacity_mah)
            .field("cells", self.cells)
            .field("cell_full_voltage", self.cell_full_voltage)
            .field("cell_empty_voltage", self.cell_empty_voltage)
            .field("cell_nominal_voltage", self.cell_nominal_voltage)
    }
}

impl mav_types::FromJson for BatteryConfig {
    /// Reads a battery description; omitted fields keep the default
    /// (Matrice TB47D) values.
    fn from_json(json: &mav_types::Json) -> Result<Self, String> {
        json.check_fields(&[
            "capacity_mah",
            "cells",
            "cell_full_voltage",
            "cell_empty_voltage",
            "cell_nominal_voltage",
        ])?;
        let base = BatteryConfig::default();
        Ok(BatteryConfig {
            capacity_mah: json.parse_field_or("capacity_mah", base.capacity_mah)?,
            cells: json.parse_field_or("cells", base.cells)?,
            cell_full_voltage: json.parse_field_or("cell_full_voltage", base.cell_full_voltage)?,
            cell_empty_voltage: json
                .parse_field_or("cell_empty_voltage", base.cell_empty_voltage)?,
            cell_nominal_voltage: json
                .parse_field_or("cell_nominal_voltage", base.cell_nominal_voltage)?,
        })
    }
}

/// A battery being discharged by the mission.
///
/// # Example
///
/// ```
/// use mav_energy::{Battery, BatteryConfig};
/// use mav_types::{Power, SimDuration};
///
/// let mut battery = Battery::new(BatteryConfig::solo_smart_battery());
/// battery.discharge(Power::from_watts(300.0), SimDuration::from_secs(60.0));
/// assert!(battery.state_of_charge() < 1.0);
/// assert!(!battery.is_exhausted());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    config: BatteryConfig,
    consumed_coulombs: f64,
    consumed_energy: Energy,
}

impl Battery {
    /// Creates a fully charged battery.
    pub fn new(config: BatteryConfig) -> Self {
        Battery {
            config,
            consumed_coulombs: 0.0,
            consumed_energy: Energy::ZERO,
        }
    }

    /// The battery configuration.
    pub fn config(&self) -> &BatteryConfig {
        &self.config
    }

    /// Remaining state of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        (1.0 - self.consumed_coulombs / self.config.capacity_coulombs()).clamp(0.0, 1.0)
    }

    /// Remaining battery percentage in `[0, 100]`.
    pub fn percentage(&self) -> f64 {
        self.state_of_charge() * 100.0
    }

    /// Total energy drawn from the pack so far.
    pub fn consumed_energy(&self) -> Energy {
        self.consumed_energy
    }

    /// Terminal voltage as a function of the remaining state of charge.
    ///
    /// The curve is the typical LiPo discharge shape: a steep initial drop,
    /// a long nearly-flat plateau and a sharp knee near empty, modelled with
    /// an exponential-plus-linear fit in the spirit of Chen & Rincón-Mora.
    pub fn voltage(&self) -> f64 {
        let soc = self.state_of_charge();
        let full = self.config.cell_full_voltage;
        let empty = self.config.cell_empty_voltage;
        // Per-cell open-circuit voltage.
        let plateau = empty + (full - empty) * 0.75;
        let cell = if soc <= 0.0 {
            empty
        } else {
            // Exponential rise near full charge, linear plateau, sharp knee.
            let knee = (-12.0 * soc).exp();
            plateau + (full - plateau) * soc.powf(0.6) - (plateau - empty) * knee
        };
        (cell * self.config.cells as f64).max(empty * self.config.cells as f64)
    }

    /// Returns `true` once the pack has delivered its full rated charge or the
    /// voltage has reached the cut-off.
    pub fn is_exhausted(&self) -> bool {
        self.state_of_charge() <= 0.0
            || self.voltage() <= self.config.cell_empty_voltage * self.config.cells as f64 + 1e-9
    }

    /// Discharges the pack at `power` for `duration` using coulomb counting:
    /// the current is `power / voltage`, and `current × duration` coulombs are
    /// removed from the pack.
    ///
    /// Returns the energy drawn during this interval.
    pub fn discharge(&mut self, power: Power, duration: SimDuration) -> Energy {
        if duration.is_zero() || power == Power::ZERO {
            return Energy::ZERO;
        }
        let voltage = self.voltage().max(1e-6);
        let current = power.as_watts() / voltage;
        self.consumed_coulombs += current * duration.as_secs();
        let energy = power.over(duration);
        self.consumed_energy += energy;
        energy
    }

    /// Estimated hover endurance in seconds at a constant `power` draw from a
    /// full pack (capacity energy / power).
    pub fn endurance_at(config: &BatteryConfig, power: Power) -> SimDuration {
        if power == Power::ZERO {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs(config.capacity_energy().as_joules() / power.as_watts())
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "battery[{:.0}% {:.1} V]",
            self.percentage(),
            self.voltage()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_battery_is_full() {
        let b = Battery::new(BatteryConfig::default());
        assert_eq!(b.state_of_charge(), 1.0);
        assert_eq!(b.percentage(), 100.0);
        assert!(!b.is_exhausted());
        assert_eq!(b.consumed_energy(), Energy::ZERO);
    }

    #[test]
    fn voltage_decreases_monotonically_with_discharge() {
        let mut b = Battery::new(BatteryConfig::solo_smart_battery());
        let mut last_v = b.voltage();
        let mut last_soc = b.state_of_charge();
        for _ in 0..50 {
            b.discharge(Power::from_watts(300.0), SimDuration::from_secs(20.0));
            let v = b.voltage();
            let soc = b.state_of_charge();
            assert!(soc <= last_soc + 1e-12);
            assert!(v <= last_v + 1e-9, "voltage rose from {last_v} to {v}");
            last_v = v;
            last_soc = soc;
            if b.is_exhausted() {
                break;
            }
        }
    }

    #[test]
    fn voltage_stays_within_cell_limits() {
        let mut b = Battery::new(BatteryConfig::default());
        let cfg = *b.config();
        loop {
            let v = b.voltage();
            assert!(v <= cfg.cell_full_voltage * cfg.cells as f64 + 1e-9);
            assert!(v >= cfg.cell_empty_voltage * cfg.cells as f64 - 1e-9);
            if b.is_exhausted() {
                break;
            }
            b.discharge(Power::from_watts(400.0), SimDuration::from_secs(30.0));
        }
    }

    #[test]
    fn exhaustion_after_rated_capacity() {
        let cfg = BatteryConfig::solo_smart_battery();
        let mut b = Battery::new(cfg);
        // Drain at hover power until exhausted; this must terminate and the
        // delivered energy must be in the ballpark of the rated capacity.
        let hover = Power::from_watts(287.0);
        let mut t = 0.0;
        while !b.is_exhausted() && t < 10_000.0 {
            b.discharge(hover, SimDuration::from_secs(5.0));
            t += 5.0;
        }
        assert!(b.is_exhausted());
        let delivered = b.consumed_energy().as_kilojoules();
        let rated = cfg.capacity_energy().as_kilojoules();
        assert!(
            (delivered - rated).abs() / rated < 0.25,
            "delivered {delivered} rated {rated}"
        );
        // Endurance at hover power should be roughly 20 minutes or less —
        // the paper's observation about off-the-shelf endurance.
        let endurance = Battery::endurance_at(&cfg, hover);
        assert!(endurance.as_secs() < 20.0 * 60.0);
        assert!(endurance.as_secs() > 3.0 * 60.0);
    }

    #[test]
    fn zero_power_or_duration_is_a_noop() {
        let mut b = Battery::new(BatteryConfig::default());
        assert_eq!(
            b.discharge(Power::ZERO, SimDuration::from_secs(10.0)),
            Energy::ZERO
        );
        assert_eq!(
            b.discharge(Power::from_watts(100.0), SimDuration::ZERO),
            Energy::ZERO
        );
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn endurance_scales_with_capacity() {
        let small = BatteryConfig {
            capacity_mah: 2500.0,
            ..BatteryConfig::default()
        };
        let large = BatteryConfig {
            capacity_mah: 5000.0,
            ..BatteryConfig::default()
        };
        let p = Power::from_watts(300.0);
        let e_small = Battery::endurance_at(&small, p).as_secs();
        let e_large = Battery::endurance_at(&large, p).as_secs();
        assert!((e_large / e_small - 2.0).abs() < 1e-9);
        assert_eq!(Battery::endurance_at(&small, Power::ZERO).as_secs(), 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Battery::new(BatteryConfig::default())).is_empty());
    }
}
