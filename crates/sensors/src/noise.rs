//! Sensor noise models.
//!
//! The reliability case study of the paper (Table II) injects Gaussian noise
//! with standard deviations of 0–1.5 m into the depth readings of the RGB-D
//! camera and observes obstacle inflation, extra re-planning and mission
//! failures. This module provides that noise injection, plus a GPS position
//! noise model used by the localization kernels.

use crate::depth_camera::DepthImage;
use mav_types::Vec3;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Gaussian noise applied to every finite pixel of a depth image.
///
/// # Example
///
/// ```
/// use mav_sensors::DepthNoiseModel;
/// let quiet = DepthNoiseModel::new(0.0, 7);
/// assert!(quiet.is_noiseless());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthNoiseModel {
    /// Standard deviation of the additive Gaussian noise, metres.
    pub std_dev: f64,
    seed: u64,
    #[serde(skip)]
    counter: u64,
}

impl DepthNoiseModel {
    /// Creates a noise model with the given standard deviation (metres) and
    /// RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn new(std_dev: f64, seed: u64) -> Self {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "invalid noise std {std_dev}"
        );
        DepthNoiseModel {
            std_dev,
            seed,
            counter: 0,
        }
    }

    /// Returns `true` when the model adds no noise at all.
    pub fn is_noiseless(&self) -> bool {
        self.std_dev == 0.0
    }

    /// Applies noise in place to a depth frame. Each call uses a fresh,
    /// deterministic RNG stream derived from the seed and an internal frame
    /// counter, so repeated runs of a mission are reproducible.
    pub fn apply(&mut self, image: &mut DepthImage) {
        if self.is_noiseless() {
            self.counter += 1;
            return;
        }
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.counter += 1;
        for d in &mut image.depths {
            if d.is_finite() {
                let n = sample_gaussian(&mut rng) * self.std_dev;
                *d = (*d + n).max(0.05);
            }
        }
    }
}

/// Gaussian position noise applied to GPS fixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpsNoiseModel {
    /// Horizontal standard deviation, metres.
    pub horizontal_std: f64,
    /// Vertical standard deviation, metres.
    pub vertical_std: f64,
    seed: u64,
    #[serde(skip)]
    counter: u64,
}

impl GpsNoiseModel {
    /// Creates a GPS noise model.
    pub fn new(horizontal_std: f64, vertical_std: f64, seed: u64) -> Self {
        assert!(horizontal_std >= 0.0 && vertical_std >= 0.0);
        GpsNoiseModel {
            horizontal_std,
            vertical_std,
            seed,
            counter: 0,
        }
    }

    /// A noise model representing a good consumer GPS fix (≈0.5 m horizontal,
    /// 1 m vertical).
    pub fn consumer_grade(seed: u64) -> Self {
        GpsNoiseModel::new(0.5, 1.0, seed)
    }

    /// A perfect (noiseless) GPS.
    pub fn perfect() -> Self {
        GpsNoiseModel::new(0.0, 0.0, 0)
    }

    /// Perturbs a true position.
    pub fn apply(&mut self, truth: Vec3) -> Vec3 {
        if self.horizontal_std == 0.0 && self.vertical_std == 0.0 {
            self.counter += 1;
            return truth;
        }
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ self.counter.wrapping_mul(0xD1B5_4A32_D192_ED03));
        self.counter += 1;
        Vec3::new(
            truth.x + sample_gaussian(&mut rng) * self.horizontal_std,
            truth.y + sample_gaussian(&mut rng) * self.horizontal_std,
            truth.z + sample_gaussian(&mut rng) * self.vertical_std,
        )
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
pub(crate) fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth_camera::{DepthCamera, DepthCameraConfig};
    use mav_env::{EnvironmentConfig, World};
    use mav_types::Pose;

    fn capture_frame(world: &World) -> DepthImage {
        DepthCamera::new(DepthCameraConfig::default())
            .capture(world, &Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0))
    }

    #[test]
    fn noiseless_model_is_identity() {
        let world = EnvironmentConfig::urban_outdoor().with_seed(2).generate();
        let clean = capture_frame(&world);
        let mut noisy = clean.clone();
        let mut model = DepthNoiseModel::new(0.0, 5);
        model.apply(&mut noisy);
        assert_eq!(clean, noisy);
    }

    #[test]
    fn noise_perturbs_finite_pixels_only() {
        let world = EnvironmentConfig::urban_outdoor().with_seed(2).generate();
        let clean = capture_frame(&world);
        let mut noisy = clean.clone();
        let mut model = DepthNoiseModel::new(1.0, 5);
        model.apply(&mut noisy);
        let mut changed = 0usize;
        for (c, n) in clean.depths.iter().zip(noisy.depths.iter()) {
            if c.is_finite() {
                assert!(n.is_finite());
                assert!(*n >= 0.05);
                if (c - n).abs() > 1e-12 {
                    changed += 1;
                }
            } else {
                assert!(!n.is_finite());
            }
        }
        assert!(changed > 0, "noise changed no pixels");
    }

    #[test]
    fn noise_magnitude_tracks_std_dev() {
        let world = EnvironmentConfig::urban_outdoor().with_seed(2).generate();
        let clean = capture_frame(&world);
        let rms = |std: f64| {
            let mut noisy = clean.clone();
            DepthNoiseModel::new(std, 11).apply(&mut noisy);
            let (sum, n) = clean
                .depths
                .iter()
                .zip(noisy.depths.iter())
                .filter(|(c, _)| c.is_finite())
                .fold((0.0, 0usize), |(s, n), (c, d)| (s + (c - d).powi(2), n + 1));
            (sum / n.max(1) as f64).sqrt()
        };
        let small = rms(0.2);
        let large = rms(1.5);
        assert!(
            large > small * 2.0,
            "expected noise to scale: {small} vs {large}"
        );
    }

    #[test]
    fn successive_frames_get_different_noise() {
        let world = EnvironmentConfig::urban_outdoor().with_seed(2).generate();
        let clean = capture_frame(&world);
        let mut model = DepthNoiseModel::new(0.5, 3);
        let mut a = clean.clone();
        let mut b = clean.clone();
        model.apply(&mut a);
        model.apply(&mut b);
        assert_ne!(a.depths, b.depths);
    }

    #[test]
    fn gps_noise_behaviour() {
        let truth = Vec3::new(10.0, -4.0, 3.0);
        assert_eq!(GpsNoiseModel::perfect().apply(truth), truth);
        let mut gps = GpsNoiseModel::consumer_grade(8);
        let fix = gps.apply(truth);
        assert!(fix.distance(&truth) < 10.0);
        let fix2 = gps.apply(truth);
        assert_ne!(fix, fix2);
    }

    #[test]
    fn gaussian_sampler_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    #[should_panic]
    fn negative_std_rejected() {
        let _ = DepthNoiseModel::new(-1.0, 0);
    }
}
