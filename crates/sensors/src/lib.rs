//! Sensor models for MAVBench-RS: RGB-D depth camera, IMU, GPS and the noise
//! models used by the paper's reliability case study.
//!
//! # Example
//!
//! ```
//! use mav_env::EnvironmentConfig;
//! use mav_sensors::{DepthCamera, DepthNoiseModel};
//! use mav_types::{Pose, Vec3};
//!
//! let world = EnvironmentConfig::urban_outdoor().with_seed(1).generate();
//! let camera = DepthCamera::default();
//! let mut frame = camera.capture(&world, &Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0));
//! let mut noise = DepthNoiseModel::new(0.5, 42);
//! noise.apply(&mut frame);
//! assert!(frame.coverage() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod depth_camera;
pub mod inertial;
pub mod noise;

pub use depth_camera::{DepthCamera, DepthCameraConfig, DepthImage};
pub use inertial::{Gps, GpsFix, Imu, ImuSample};
pub use noise::{DepthNoiseModel, GpsNoiseModel};
