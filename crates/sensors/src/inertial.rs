//! Inertial and GPS sensing.
//!
//! The flight controller consumes IMU samples while the perception stage of
//! each workload consumes GPS fixes (or hands them to the SLAM substitute).

use crate::noise::GpsNoiseModel;
use mav_types::{Pose, SimTime, Twist, Vec3};
use serde::{Deserialize, Serialize};

/// One inertial measurement: specific force and angular rate plus a timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuSample {
    /// Linear acceleration including gravity compensation, m/s².
    pub acceleration: Vec3,
    /// Yaw rate, rad/s.
    pub yaw_rate: f64,
    /// Mission time of the sample.
    pub time: SimTime,
}

/// A GPS position fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsFix {
    /// Estimated position, world frame, metres.
    pub position: Vec3,
    /// Mission time of the fix.
    pub time: SimTime,
    /// One-sigma horizontal accuracy estimate, metres.
    pub horizontal_accuracy: f64,
}

/// Simulated IMU producing noiseless samples from the true vehicle state.
///
/// The paper's evaluation never varies IMU quality, so the default IMU is
/// ideal; acceleration noise can be added through the `accel_noise_std`
/// field when reliability studies need it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Imu {
    /// Standard deviation of additive acceleration noise, m/s².
    pub accel_noise_std: f64,
}

impl Default for Imu {
    fn default() -> Self {
        Imu {
            accel_noise_std: 0.0,
        }
    }
}

impl Imu {
    /// Creates an ideal IMU.
    pub fn ideal() -> Self {
        Imu::default()
    }

    /// Produces a sample from the true acceleration and yaw rate.
    pub fn sample(&self, acceleration: Vec3, twist: &Twist, time: SimTime) -> ImuSample {
        ImuSample {
            acceleration,
            yaw_rate: twist.yaw_rate,
            time,
        }
    }
}

/// Simulated GPS receiver.
///
/// # Example
///
/// ```
/// use mav_sensors::{Gps, GpsNoiseModel};
/// use mav_types::{Pose, SimTime, Vec3};
///
/// let mut gps = Gps::new(GpsNoiseModel::perfect());
/// let fix = gps.fix(&Pose::new(Vec3::new(1.0, 2.0, 3.0), 0.0), SimTime::ZERO);
/// assert_eq!(fix.position, Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gps {
    noise: GpsNoiseModel,
}

impl Gps {
    /// Creates a GPS with the given noise model.
    pub fn new(noise: GpsNoiseModel) -> Self {
        Gps { noise }
    }

    /// Produces a fix of the true pose.
    pub fn fix(&mut self, truth: &Pose, time: SimTime) -> GpsFix {
        let position = self.noise.apply(truth.position);
        GpsFix {
            position,
            time,
            horizontal_accuracy: self.noise.horizontal_std.max(0.01),
        }
    }
}

impl Default for Gps {
    fn default() -> Self {
        Gps::new(GpsNoiseModel::perfect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_imu_passes_through_truth() {
        let imu = Imu::ideal();
        let twist = Twist::new(Vec3::new(1.0, 0.0, 0.0), 0.2);
        let s = imu.sample(Vec3::new(0.0, 0.0, -9.81), &twist, SimTime::from_secs(1.0));
        assert_eq!(s.acceleration.z, -9.81);
        assert_eq!(s.yaw_rate, 0.2);
        assert_eq!(s.time.as_secs(), 1.0);
    }

    #[test]
    fn perfect_gps_is_exact() {
        let mut gps = Gps::default();
        let truth = Pose::new(Vec3::new(5.0, -3.0, 10.0), 1.0);
        let fix = gps.fix(&truth, SimTime::from_secs(2.0));
        assert_eq!(fix.position, truth.position);
        assert!(fix.horizontal_accuracy > 0.0);
    }

    #[test]
    fn noisy_gps_scatters_fixes() {
        let mut gps = Gps::new(GpsNoiseModel::consumer_grade(4));
        let truth = Pose::new(Vec3::new(5.0, -3.0, 10.0), 1.0);
        let a = gps.fix(&truth, SimTime::ZERO);
        let b = gps.fix(&truth, SimTime::from_secs(1.0));
        assert_ne!(a.position, b.position);
        assert!(a.position.distance(&truth.position) < 5.0);
    }
}
