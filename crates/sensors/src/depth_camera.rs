//! Simulated RGB-D depth camera.
//!
//! The depth camera is the main exteroceptive sensor of every MAVBench
//! workload: its frames feed point-cloud generation, OctoMap updates and
//! collision checking. Here a frame is produced by casting one ray per pixel
//! into the [`mav_env::World`], which mirrors how AirSim rasterises depth from
//! the Unreal scene.

use mav_env::World;
use mav_types::{Pose, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static configuration of a depth camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthCameraConfig {
    /// Horizontal resolution in pixels.
    pub width: usize,
    /// Vertical resolution in pixels.
    pub height: usize,
    /// Horizontal field of view in radians.
    pub fov_horizontal: f64,
    /// Vertical field of view in radians.
    pub fov_vertical: f64,
    /// Maximum sensing range in metres; pixels with no return within this
    /// range are reported as [`f64::INFINITY`].
    pub max_range: f64,
}

impl Default for DepthCameraConfig {
    fn default() -> Self {
        // A coarse 32x24 depth frame keeps per-frame ray counts small enough
        // for the closed-loop simulation while preserving the geometry the
        // perception kernels need. Benchmarks can raise the resolution.
        DepthCameraConfig {
            width: 32,
            height: 24,
            fov_horizontal: std::f64::consts::FRAC_PI_2, // 90 degrees
            fov_vertical: std::f64::consts::FRAC_PI_3,   // 60 degrees
            max_range: 25.0,
        }
    }
}

impl mav_types::ToJson for DepthCameraConfig {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::object()
            .field("width", self.width)
            .field("height", self.height)
            .field("fov_horizontal", self.fov_horizontal)
            .field("fov_vertical", self.fov_vertical)
            .field("max_range", self.max_range)
    }
}

impl mav_types::FromJson for DepthCameraConfig {
    /// Reads a depth-camera description; omitted fields keep the default
    /// (32×24, 90°×60°, 25 m) values.
    fn from_json(json: &mav_types::Json) -> Result<Self, String> {
        json.check_fields(&[
            "width",
            "height",
            "fov_horizontal",
            "fov_vertical",
            "max_range",
        ])?;
        let base = DepthCameraConfig::default();
        let config = DepthCameraConfig {
            width: json.parse_field_or("width", base.width)?,
            height: json.parse_field_or("height", base.height)?,
            fov_horizontal: json.parse_field_or("fov_horizontal", base.fov_horizontal)?,
            fov_vertical: json.parse_field_or("fov_vertical", base.fov_vertical)?,
            max_range: json.parse_field_or("max_range", base.max_range)?,
        };
        if config.width == 0 || config.height == 0 {
            return Err("width/height: resolution must be non-zero".to_string());
        }
        Ok(config)
    }
}

impl DepthCameraConfig {
    /// A higher-resolution configuration used by the perception benchmarks.
    pub fn high_resolution() -> Self {
        DepthCameraConfig {
            width: 128,
            height: 96,
            ..Default::default()
        }
    }

    /// Number of pixels per frame.
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }
}

/// A single depth frame: row-major range values in metres.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major depth values in metres; `INFINITY` means no return.
    pub depths: Vec<f64>,
    /// Pose of the camera when the frame was captured.
    pub camera_pose: Pose,
    /// Configuration the frame was captured with.
    pub config: DepthCameraConfig,
}

impl DepthImage {
    /// Depth at pixel `(u, v)` where `u` is the column and `v` the row.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of range.
    pub fn depth_at(&self, u: usize, v: usize) -> f64 {
        assert!(
            u < self.width && v < self.height,
            "pixel ({u},{v}) out of range"
        );
        self.depths[v * self.width + u]
    }

    /// Minimum finite depth in the frame, or `None` when every pixel is a
    /// no-return.
    pub fn min_depth(&self) -> Option<f64> {
        self.depths
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.min(d))))
    }

    /// Fraction of pixels that returned a finite depth.
    pub fn coverage(&self) -> f64 {
        if self.depths.is_empty() {
            return 0.0;
        }
        self.depths.iter().filter(|d| d.is_finite()).count() as f64 / self.depths.len() as f64
    }

    /// World-frame ray direction of pixel `(u, v)` given the capture pose.
    pub fn ray_direction(&self, u: usize, v: usize) -> Vec3 {
        pixel_ray(&self.config, &self.camera_pose, u, v)
    }

    /// World-frame 3D point for pixel `(u, v)`, or `None` for a no-return.
    pub fn point_at(&self, u: usize, v: usize) -> Option<Vec3> {
        let d = self.depth_at(u, v);
        if d.is_finite() {
            Some(self.camera_pose.position + self.ray_direction(u, v) * d)
        } else {
            None
        }
    }

    /// Iterates over all finite-range points of the frame in the world frame.
    pub fn points(&self) -> Vec<Vec3> {
        let mut out = Vec::new();
        for v in 0..self.height {
            for u in 0..self.width {
                if let Some(p) = self.point_at(u, v) {
                    out.push(p);
                }
            }
        }
        out
    }
}

impl fmt::Display for DepthImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "depth[{}x{}, coverage {:.0}%]",
            self.width,
            self.height,
            self.coverage() * 100.0
        )
    }
}

/// World-frame ray direction for pixel `(u, v)` of a camera with `config`
/// looking along the pose's yaw (the camera is pitch-stabilised by the
/// simulated gimbal, matching the gimbal MAVBench adds to AirSim).
fn pixel_ray(config: &DepthCameraConfig, pose: &Pose, u: usize, v: usize) -> Vec3 {
    let half_w = (config.width.max(2) - 1) as f64 / 2.0;
    let half_h = (config.height.max(2) - 1) as f64 / 2.0;
    // Normalised pixel coordinates in [-1, 1].
    let nx = (u as f64 - half_w) / half_w;
    let ny = (v as f64 - half_h) / half_h;
    let azimuth = pose.yaw + nx * config.fov_horizontal / 2.0;
    let elevation = -ny * config.fov_vertical / 2.0;
    Vec3::new(
        elevation.cos() * azimuth.cos(),
        elevation.cos() * azimuth.sin(),
        elevation.sin(),
    )
    .normalized()
}

/// The simulated depth camera itself.
///
/// # Example
///
/// ```
/// use mav_env::EnvironmentConfig;
/// use mav_sensors::{DepthCamera, DepthCameraConfig};
/// use mav_types::{Pose, Vec3};
///
/// let world = EnvironmentConfig::urban_outdoor().with_seed(1).generate();
/// let camera = DepthCamera::new(DepthCameraConfig::default());
/// let frame = camera.capture(&world, &Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0));
/// assert_eq!(frame.depths.len(), frame.width * frame.height);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthCamera {
    config: DepthCameraConfig,
}

impl DepthCamera {
    /// Creates a camera with the given configuration.
    pub fn new(config: DepthCameraConfig) -> Self {
        DepthCamera { config }
    }

    /// The camera configuration.
    pub fn config(&self) -> &DepthCameraConfig {
        &self.config
    }

    /// Captures a depth frame from `pose` into `world`.
    pub fn capture(&self, world: &World, pose: &Pose) -> DepthImage {
        let mut depths = Vec::with_capacity(self.config.pixel_count());
        for v in 0..self.config.height {
            for u in 0..self.config.width {
                let dir = pixel_ray(&self.config, pose, u, v);
                let depth = world
                    .raycast(&pose.position, &dir, self.config.max_range)
                    .map(|hit| hit.distance)
                    .unwrap_or(f64::INFINITY);
                depths.push(depth);
            }
        }
        DepthImage {
            width: self.config.width,
            height: self.config.height,
            depths,
            camera_pose: *pose,
            config: self.config,
        }
    }
}

impl Default for DepthCamera {
    fn default() -> Self {
        DepthCamera::new(DepthCameraConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_env::{ObstacleClass, World};
    use mav_types::Aabb;

    fn wall_world() -> World {
        let mut w = World::empty(Aabb::new(
            Vec3::new(-50.0, -50.0, 0.0),
            Vec3::new(50.0, 50.0, 30.0),
        ));
        // A wall 10 m in front of the origin spanning the whole field of view.
        w.add_box(
            Aabb::from_center_size(Vec3::new(10.0, 0.0, 5.0), Vec3::new(1.0, 60.0, 10.0)),
            ObstacleClass::Structure,
        );
        w
    }

    #[test]
    fn frame_dimensions_match_config() {
        let cam = DepthCamera::default();
        let frame = cam.capture(&wall_world(), &Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0));
        assert_eq!(frame.width, cam.config().width);
        assert_eq!(frame.height, cam.config().height);
        assert_eq!(frame.depths.len(), cam.config().pixel_count());
    }

    #[test]
    fn wall_appears_at_expected_depth() {
        let cam = DepthCamera::default();
        let frame = cam.capture(&wall_world(), &Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0));
        // The centre pixel looks straight ahead and must report roughly 9.5 m
        // (the wall face is at x = 9.5).
        let c = frame.depth_at(frame.width / 2, frame.height / 2);
        assert!((c - 9.5).abs() < 0.5, "centre depth {c}");
        assert!(frame.min_depth().unwrap() <= c + 1e-9);
        assert!(frame.coverage() > 0.3);
    }

    #[test]
    fn points_lie_on_the_wall() {
        let cam = DepthCamera::default();
        let pose = Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0);
        let frame = cam.capture(&wall_world(), &pose);
        let pts = frame.points();
        assert!(!pts.is_empty());
        for p in pts {
            // Every returned point must be on (or extremely near) an obstacle
            // surface or the world boundary.
            assert!(p.x > 0.0);
        }
    }

    #[test]
    fn empty_world_has_boundary_returns_only() {
        let world = World::empty(Aabb::new(
            Vec3::new(-10.0, -10.0, 0.0),
            Vec3::new(10.0, 10.0, 10.0),
        ));
        let cam = DepthCamera::new(DepthCameraConfig {
            max_range: 5.0,
            ..Default::default()
        });
        let frame = cam.capture(&world, &Pose::new(Vec3::new(0.0, 0.0, 5.0), 0.0));
        // World boundary is 10 m away, beyond the 5 m max range: no returns.
        assert_eq!(frame.coverage(), 0.0);
        assert!(frame.min_depth().is_none());
        assert!(frame.point_at(0, 0).is_none());
    }

    #[test]
    fn yaw_rotates_the_view() {
        let cam = DepthCamera::default();
        let world = wall_world();
        // Facing away from the wall the centre pixel sees nothing within range.
        let away = cam.capture(
            &world,
            &Pose::new(Vec3::new(0.0, 0.0, 2.0), std::f64::consts::PI),
        );
        let c = away.depth_at(away.width / 2, away.height / 2);
        assert!(!c.is_finite() || c > 20.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_pixel_panics() {
        let cam = DepthCamera::default();
        let frame = cam.capture(&wall_world(), &Pose::origin());
        let _ = frame.depth_at(frame.width, 0);
    }

    #[test]
    fn display_nonempty() {
        let cam = DepthCamera::default();
        let frame = cam.capture(&wall_world(), &Pose::origin());
        assert!(!format!("{frame}").is_empty());
    }
}
