//! Re-export of the uniform-grid bucket index.
//!
//! [`PointGrid`] started life here as the planners' nearest-neighbour /
//! radius-connection index; it now also serves frontier clustering and
//! detection-to-track association in the perception layer, so the
//! implementation lives in `mav_types::spatial` (the one crate below both).
//! This module keeps the original `mav_planning::spatial::PointGrid` path
//! working.

pub use mav_types::spatial::PointGrid;
