//! Motion-planning kernels for MAVBench-RS: collision checking, sampling-based
//! shortest-path planners (RRT and PRM+A*), frontier exploration, lawnmower
//! coverage and trajectory smoothing.
//!
//! These are the Rust substitutes for OMPL and the next-best-view planner the
//! original MAVBench plugs into its workloads. All planners consume the
//! occupancy map produced by `mav-perception` and emit waypoint chains or
//! time-parameterised trajectories consumed by `mav-control`.
//!
//! # Example
//!
//! ```
//! use mav_perception::{OctoMap, OctoMapConfig};
//! use mav_planning::{CollisionChecker, PathSmoother, PlannerConfig, PlannerKind, ShortestPathPlanner, SmootherConfig};
//! use mav_types::{Aabb, SimTime, Vec3};
//!
//! let map = OctoMap::new(OctoMapConfig::default(), 32.0);
//! let checker = CollisionChecker::new(0.33);
//! let bounds = Aabb::new(Vec3::new(-20.0, -20.0, 0.5), Vec3::new(20.0, 20.0, 5.0));
//! let planner = ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::PrmAstar, bounds));
//! let path = planner.plan(&map, &checker, Vec3::new(0.0, 0.0, 2.0), Vec3::new(12.0, 6.0, 2.0)).unwrap();
//! let traj = PathSmoother::new(SmootherConfig::new(8.0, 4.0)).smooth(&path.waypoints, SimTime::ZERO).unwrap();
//! assert!(traj.max_speed() <= 8.0 + 1e-9);
//! ```

#![warn(missing_docs)]

pub mod collision;
pub mod frontier;
pub mod lawnmower;
pub mod shortest_path;
pub mod smoothing;
pub mod spatial;

pub use collision::{CollisionChecker, CollisionHit};
pub use frontier::{Frontier, FrontierConfig, FrontierExplorer};
pub use lawnmower::{coverage_fraction, path_length, plan_lawnmower, LawnmowerConfig};
pub use shortest_path::{PlannedPath, PlannerConfig, PlannerKind, ShortestPathPlanner};
pub use smoothing::{PathSmoother, SmootherConfig};
pub use spatial::PointGrid;
