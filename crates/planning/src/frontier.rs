//! Frontier-exploration planning (next-best-view substitute).
//!
//! 3D Mapping and Search and Rescue do not fly to a fixed goal: they sample
//! the occupancy map for *frontiers* — free voxels adjacent to unknown space —
//! and repeatedly fly towards the most promising one until no frontiers
//! remain (the area is mapped) or the mission goal (a detected person) is
//! reached. The selection heuristic mirrors the paper's description: prefer
//! short paths with high exploratory promise.

use crate::collision::CollisionChecker;
use crate::shortest_path::{PlannedPath, ShortestPathPlanner};
use crate::spatial::PointGrid;
use mav_perception::OctoMap;
use mav_types::{MavError, Result, Vec3};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Per-thread working state for frontier extraction, which ticks once per
    /// replan: the free-voxel-centre query alone runs to tens of thousands of
    /// points on a partially mapped world, and the clustering pass behind it
    /// used to rebuild a [`PointGrid`] (dense bucket array included) plus one
    /// member `Vec` per cluster every call. Reusing all of it makes a replan
    /// allocation-free in the steady state.
    static SCRATCH: RefCell<FrontierScratch> = RefCell::new(FrontierScratch::default());
}

/// Reusable buffers for one frontier extraction (see [`SCRATCH`]).
#[derive(Debug, Default)]
struct FrontierScratch {
    /// Free-voxel centres straight from the map.
    centers: Vec<Vec3>,
    /// Altitude-banded frontier candidates (subsampled in place when large).
    points: Vec<Vec3>,
    /// Radius index over the clustered points, rebuilt by `PointGrid::reset`.
    grid: Option<PointGrid>,
    /// Cluster id of each indexed point, by insertion order.
    cluster_of: Vec<u32>,
    /// Candidate buffer for the radius queries.
    candidates: Vec<u32>,
    /// Cluster member pool: a call's clusters are the first `active` entries
    /// (see [`FrontierExplorer::cluster_into`]); entries past that are spares
    /// from earlier calls kept for their capacity.
    clusters: Vec<Vec<Vec3>>,
}

/// A cluster of frontier voxels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frontier {
    /// Representative point of the cluster (centroid snapped to a member).
    pub center: Vec3,
    /// Number of frontier voxels in the cluster — the exploratory promise.
    pub size: usize,
}

/// Configuration of the frontier explorer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierConfig {
    /// Voxels whose centres are closer than this are clustered together.
    pub cluster_radius: f64,
    /// Frontiers below this size are ignored (sensor noise).
    pub min_cluster_size: usize,
    /// Weight of distance in the utility function (higher = prefer closer
    /// frontiers more strongly).
    pub distance_weight: f64,
    /// Minimum altitude of considered frontiers (keeps the explorer off the
    /// floor).
    pub min_altitude: f64,
    /// Maximum altitude of considered frontiers.
    pub max_altitude: f64,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        FrontierConfig {
            cluster_radius: 3.0,
            min_cluster_size: 2,
            distance_weight: 1.0,
            min_altitude: 0.5,
            max_altitude: 8.0,
        }
    }
}

/// The frontier-exploration planner.
///
/// # Example
///
/// ```
/// use mav_perception::{OctoMap, OctoMapConfig, PointCloud};
/// use mav_planning::{FrontierConfig, FrontierExplorer};
/// use mav_types::Vec3;
///
/// let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 32.0);
/// let cloud = PointCloud::new(
///     Vec3::new(0.0, 0.0, 2.0),
///     vec![Vec3::new(8.0, 0.0, 2.0), Vec3::new(8.0, 2.0, 2.0)],
/// );
/// map.insert_point_cloud(&cloud);
/// let explorer = FrontierExplorer::new(FrontierConfig::default());
/// assert!(!explorer.find_frontiers(&map).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierExplorer {
    config: FrontierConfig,
}

impl FrontierExplorer {
    /// Creates an explorer.
    pub fn new(config: FrontierConfig) -> Self {
        FrontierExplorer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FrontierConfig {
        &self.config
    }

    /// Finds and clusters the frontiers of the map: free voxels with at least
    /// one unknown 6-neighbour, grouped by proximity.
    pub fn find_frontiers(&self, map: &OctoMap) -> Vec<Frontier> {
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            map.free_voxel_centers_into(&mut scratch.centers);
            scratch.points.clear();
            for &center in scratch.centers.iter() {
                if center.z < self.config.min_altitude || center.z > self.config.max_altitude {
                    continue;
                }
                // Six hash-indexed bit tests against the known-voxel block
                // index — decision-identical to probing `center ± resolution`
                // per axis with `is_unknown`, minus six octree descents.
                if map.has_unknown_neighbor6(&center) {
                    scratch.points.push(center);
                }
            }
            // Bound the clustering cost on very large maps: a uniform stride
            // keeps a representative subset (frontier clusters are spatially
            // extended, so subsampling preserves them). In place — same
            // elements as a `step_by(stride)` collect.
            const MAX_FRONTIER_POINTS: usize = 1200;
            if scratch.points.len() > MAX_FRONTIER_POINTS {
                let stride = scratch.points.len() / MAX_FRONTIER_POINTS + 1;
                let mut kept = 0;
                let mut i = 0;
                while i < scratch.points.len() {
                    scratch.points[kept] = scratch.points[i];
                    kept += 1;
                    i += stride;
                }
                scratch.points.truncate(kept);
            }
            let FrontierScratch {
                points,
                grid,
                cluster_of,
                candidates,
                clusters,
                ..
            } = scratch;
            let active = self.cluster_into(map, points, grid, cluster_of, candidates, clusters);
            let mut frontiers: Vec<Frontier> = clusters[..active]
                .iter()
                .filter(|c| c.len() >= self.config.min_cluster_size)
                .map(|c| {
                    let centroid = c.iter().fold(Vec3::ZERO, |acc, p| acc + *p) / c.len() as f64;
                    // Snap the representative to the member nearest the
                    // centroid so it is guaranteed to be a free voxel centre.
                    // `total_cmp` ≡ the historical `partial_cmp().expect()`
                    // here: squared distances are finite and non-negative, so
                    // the only values the comparators order differently
                    // (NaN, ±0.0 — distance² of +0.0 has one bit pattern)
                    // never reach it, and it cannot panic.
                    let center = c
                        .iter()
                        .copied()
                        .min_by(|a, b| {
                            a.distance_squared(&centroid)
                                .total_cmp(&b.distance_squared(&centroid))
                        })
                        .expect("cluster non-empty");
                    Frontier {
                        center,
                        size: c.len(),
                    }
                })
                .collect();
            frontiers.sort_by_key(|f| std::cmp::Reverse(f.size));
            frontiers
        })
    }

    /// Greedy proximity clustering through the [`PointGrid`] radius index:
    /// each point joins the earliest-created cluster owning a member within
    /// `cluster_radius`, or starts a new one. Identical to the reference
    /// all-clusters scan (see [`FrontierExplorer::cluster_reference`]) — the
    /// grid's radius candidates are a superset that is re-tested with the
    /// exact member-distance predicate, and "first cluster in creation order
    /// with a match" is "minimum cluster id over all matches".
    ///
    /// All working state is caller-owned so a replan reuses it: the clusters
    /// land in the first `active` entries of `clusters` (the return value),
    /// each recycled from the pool with its capacity intact; entries past
    /// `active` are leftover spares and are not part of the result.
    fn cluster_into(
        &self,
        map: &OctoMap,
        points: &[Vec3],
        grid_slot: &mut Option<PointGrid>,
        cluster_of: &mut Vec<u32>,
        candidates: &mut Vec<u32>,
        clusters: &mut Vec<Vec<Vec3>>,
    ) -> usize {
        let cell = self.config.cluster_radius.max(1e-6);
        let grid = match grid_slot {
            Some(grid) => {
                grid.reset(&map.domain(), cell);
                grid
            }
            None => grid_slot.insert(PointGrid::new(&map.domain(), cell)),
        };
        cluster_of.clear();
        let mut active = 0usize;
        for &p in points {
            candidates.clear();
            grid.candidates_within(&p, self.config.cluster_radius, candidates);
            // Min matching cluster id with an exact prune: a candidate whose
            // id is not below the running min cannot change the result, so
            // its (sqrt-paying) distance test is skipped. Frontier shells are
            // dense — after the first match almost every later candidate
            // shares that cluster and costs one integer compare.
            let mut joined: Option<u32> = None;
            for &i in candidates.iter() {
                let id = cluster_of[i as usize];
                if joined.is_some_and(|j| id >= j) {
                    continue;
                }
                if grid.point(i as usize).distance(&p) <= self.config.cluster_radius {
                    joined = Some(id);
                }
            }
            let id = match joined {
                Some(id) => {
                    clusters[id as usize].push(p);
                    id
                }
                None => {
                    if active == clusters.len() {
                        clusters.push(Vec::new());
                    }
                    clusters[active].clear();
                    clusters[active].push(p);
                    active += 1;
                    (active - 1) as u32
                }
            };
            grid.insert(p);
            cluster_of.push(id);
        }
        active
    }

    /// [`FrontierExplorer::cluster_into`] with owned state, for the
    /// differential tests against [`FrontierExplorer::cluster_reference`].
    #[cfg(test)]
    fn cluster(&self, map: &OctoMap, points: &[Vec3]) -> Vec<Vec<Vec3>> {
        let mut grid = None;
        let mut cluster_of = Vec::new();
        let mut candidates = Vec::new();
        let mut clusters = Vec::new();
        let active = self.cluster_into(
            map,
            points,
            &mut grid,
            &mut cluster_of,
            &mut candidates,
            &mut clusters,
        );
        clusters.truncate(active);
        clusters
    }

    /// The pre-index greedy clustering, kept as the differential oracle for
    /// [`FrontierExplorer::cluster`]: scan existing clusters in creation
    /// order and join the first with any member within `cluster_radius`.
    #[cfg(test)]
    fn cluster_reference(&self, points: &[Vec3]) -> Vec<Vec<Vec3>> {
        let mut clusters: Vec<Vec<Vec3>> = Vec::new();
        for &p in points {
            match clusters.iter_mut().find(|c| {
                c.iter()
                    .any(|q| q.distance(&p) <= self.config.cluster_radius)
            }) {
                Some(cluster) => cluster.push(p),
                None => clusters.push(vec![p]),
            }
        }
        clusters
    }

    /// Picks the best frontier from `position` using the utility
    /// `size / (1 + w · distance)` — high exploratory promise, short path.
    pub fn select_frontier(&self, map: &OctoMap, position: &Vec3) -> Option<Frontier> {
        // `total_cmp` ≡ the historical `partial_cmp().expect()`: utilities
        // are strictly positive finite (size ≥ 1, denominator ≥ 1), so the
        // NaN/±0.0 cases where the comparators differ cannot occur.
        self.find_frontiers(map).into_iter().max_by(|a, b| {
            let ua =
                a.size as f64 / (1.0 + self.config.distance_weight * a.center.distance(position));
            let ub =
                b.size as f64 / (1.0 + self.config.distance_weight * b.center.distance(position));
            ua.total_cmp(&ub)
        })
    }

    /// Plans a path from `position` to the best frontier using the given
    /// shortest-path planner.
    ///
    /// # Errors
    ///
    /// Returns [`MavError::PlanningFailed`] when no frontier exists (the map
    /// is complete) or no frontier is reachable.
    pub fn plan_exploration(
        &self,
        map: &OctoMap,
        checker: &CollisionChecker,
        planner: &ShortestPathPlanner,
        position: Vec3,
    ) -> Result<(Frontier, PlannedPath)> {
        let frontiers = self.find_frontiers(map);
        if frontiers.is_empty() {
            return Err(MavError::planning_failed("frontier", "no frontiers remain"));
        }
        // Try frontiers in descending utility order until one is reachable.
        let mut ranked = frontiers;
        // Same comparator-equivalence argument as `select_frontier`: strictly
        // positive finite utilities, so `total_cmp` orders identically.
        ranked.sort_by(|a, b| {
            let ua =
                a.size as f64 / (1.0 + self.config.distance_weight * a.center.distance(&position));
            let ub =
                b.size as f64 / (1.0 + self.config.distance_weight * b.center.distance(&position));
            ub.total_cmp(&ua)
        });
        for frontier in ranked {
            if let Ok(path) = planner.plan(map, checker, position, frontier.center) {
                return Ok((frontier, path));
            }
        }
        Err(MavError::planning_failed(
            "frontier",
            "no reachable frontier",
        ))
    }
}

impl Default for FrontierExplorer {
    fn default() -> Self {
        FrontierExplorer::new(FrontierConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest_path::{PlannerConfig, PlannerKind};
    use mav_perception::{OctoMapConfig, PointCloud};
    use mav_types::Aabb;

    /// Builds a partially observed map by scanning from the origin towards +x.
    fn partial_map() -> OctoMap {
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 32.0);
        let origin = Vec3::new(0.0, 0.0, 2.0);
        let mut points = Vec::new();
        for i in -10..=10 {
            points.push(Vec3::new(12.0, i as f64 * 0.5, 2.0));
        }
        map.insert_point_cloud(&PointCloud::new(origin, points));
        map
    }

    #[test]
    fn frontiers_exist_at_the_edge_of_known_space() {
        let map = partial_map();
        let explorer = FrontierExplorer::default();
        let frontiers = explorer.find_frontiers(&map);
        assert!(!frontiers.is_empty());
        // Every reported frontier centre is a known-free voxel.
        for f in &frontiers {
            assert!(!map.is_unknown(&f.center));
            assert!(f.size >= explorer.config().min_cluster_size);
        }
    }

    #[test]
    fn empty_map_has_no_frontiers() {
        let map = OctoMap::new(OctoMapConfig::default(), 32.0);
        let explorer = FrontierExplorer::default();
        assert!(explorer.find_frontiers(&map).is_empty());
        assert!(explorer.select_frontier(&map, &Vec3::ZERO).is_none());
    }

    #[test]
    fn selection_prefers_nearby_large_clusters() {
        let map = partial_map();
        let explorer = FrontierExplorer::default();
        let selected = explorer
            .select_frontier(&map, &Vec3::new(0.0, 0.0, 2.0))
            .unwrap();
        // The selected frontier must not be the farthest-away tiny cluster:
        // its utility must be at least that of every other frontier.
        let all = explorer.find_frontiers(&map);
        let utility =
            |f: &Frontier| f.size as f64 / (1.0 + f.center.distance(&Vec3::new(0.0, 0.0, 2.0)));
        for f in &all {
            assert!(utility(&selected) >= utility(f) - 1e-9);
        }
    }

    #[test]
    fn exploration_planning_returns_a_reachable_path() {
        let map = partial_map();
        let explorer = FrontierExplorer::default();
        let checker = CollisionChecker::new(0.33);
        let bounds = Aabb::new(Vec3::new(-30.0, -30.0, 0.5), Vec3::new(30.0, 30.0, 8.0));
        let planner = ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::Rrt, bounds));
        let (frontier, path) = explorer
            .plan_exploration(&map, &checker, &planner, Vec3::new(0.0, 0.0, 2.0))
            .unwrap();
        assert!(frontier.size >= 2);
        assert!(path.waypoints.len() >= 2);
        assert!(path.waypoints.last().unwrap().distance(&frontier.center) < 1e-9);
    }

    #[test]
    fn exploration_fails_on_a_fully_unknown_map() {
        let map = OctoMap::new(OctoMapConfig::default(), 32.0);
        let explorer = FrontierExplorer::default();
        let checker = CollisionChecker::new(0.33);
        let bounds = Aabb::new(Vec3::new(-30.0, -30.0, 0.5), Vec3::new(30.0, 30.0, 8.0));
        let planner = ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::Rrt, bounds));
        assert!(matches!(
            explorer.plan_exploration(&map, &checker, &planner, Vec3::ZERO),
            Err(MavError::PlanningFailed { .. })
        ));
    }

    #[test]
    fn grid_clustering_matches_reference() {
        let map = partial_map();
        for radius in [0.75, 3.0, 9.0] {
            let explorer = FrontierExplorer::new(FrontierConfig {
                cluster_radius: radius,
                ..Default::default()
            });
            // Deterministic scattered points (xorshift), spanning several
            // cluster radii so joins, near-misses and new clusters all occur.
            let mut state = 0x9e3779b97f4a7c15u64;
            let mut unit = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let points: Vec<Vec3> = (0..400)
                .map(|_| Vec3::new(unit() * 40.0 - 20.0, unit() * 40.0 - 20.0, unit() * 6.0))
                .collect();
            assert_eq!(
                explorer.cluster(&map, &points),
                explorer.cluster_reference(&points),
                "clustering diverged at radius {radius}"
            );
        }
    }

    #[test]
    fn altitude_band_filters_frontiers() {
        let map = partial_map();
        let low_ceiling = FrontierExplorer::new(FrontierConfig {
            max_altitude: 0.4,
            min_altitude: 0.0,
            ..Default::default()
        });
        // All observed space is at z ≈ 2 m, so a 0.4 m ceiling removes it all.
        assert!(low_ceiling.find_frontiers(&map).is_empty());
    }
}
