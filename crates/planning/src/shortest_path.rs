//! Sampling-based shortest-path planners: RRT and PRM + A*.
//!
//! These are the OMPL substitutes. Both planners operate on the occupancy map
//! through the [`CollisionChecker`] and return a piecewise-linear sequence of
//! waypoints from start to goal; the smoothing kernel later converts the
//! waypoints into a dynamically feasible trajectory.

use crate::collision::CollisionChecker;
use crate::spatial::PointGrid;
use mav_perception::OctoMap;
use mav_types::{Aabb, MavError, Result, Vec3};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BinaryHeap, HashMap};

/// Reusable per-thread planning buffers: the RRT tree (nodes + parents), the
/// PRM roadmap (vertices + adjacency lists), the radius-query candidate
/// staging vector and the bucket index. [`ShortestPathPlanner`] is a
/// plain-data config (it serializes and compares), so its working memory
/// lives here instead: one warm set per worker thread, handed to every plan
/// call on that thread. Reuse is behaviour-transparent — each plan clears the
/// buffers and [`PointGrid::reset`] restores the exact fresh-grid state — so
/// planned paths are identical to a cold run (the determinism test pins
/// this).
#[derive(Default)]
struct PlanScratch {
    nodes: Vec<Vec3>,
    parents: Vec<usize>,
    vertices: Vec<Vec3>,
    adjacency: Vec<Vec<(usize, f64)>>,
    candidates: Vec<u32>,
    grid: Option<PointGrid>,
}

thread_local! {
    static PLAN_SCRATCH: RefCell<PlanScratch> = RefCell::new(PlanScratch::default());
}

/// Runs `f` with this thread's planning scratch. The scratch is moved out for
/// the duration of the call (a nested plan simply gets a fresh one), so there
/// is no aliasing even if a collision callback re-enters the planner.
fn with_plan_scratch<R>(f: impl FnOnce(&mut PlanScratch) -> R) -> R {
    PLAN_SCRATCH.with(|cell| {
        let mut scratch = cell.take();
        let result = f(&mut scratch);
        *cell.borrow_mut() = scratch;
        result
    })
}

/// Which sampling-based planner to use (the "plug and play" knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlannerKind {
    /// Rapidly-exploring random tree.
    Rrt,
    /// Probabilistic roadmap searched with A*.
    PrmAstar,
}

/// Configuration shared by the shortest-path planners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Which algorithm to run.
    pub kind: PlannerKind,
    /// Sampling region.
    pub bounds: Aabb,
    /// RRT extension step length / PRM connection radius, metres.
    pub step: f64,
    /// Maximum number of samples before giving up.
    pub max_samples: usize,
    /// Probability of sampling the goal directly (RRT goal bias).
    pub goal_bias: f64,
    /// Distance at which the goal counts as reached, metres.
    pub goal_tolerance: f64,
    /// RNG seed.
    pub seed: u64,
    /// Use the uniform-grid bucket index ([`crate::spatial::PointGrid`]) for
    /// RRT nearest-neighbour and PRM radius-connection. The index is exact,
    /// so planned paths are identical either way; `false` restores the
    /// brute-force O(n²) loops (kept for equivalence tests and A/B
    /// benchmarking).
    pub spatial_index: bool,
}

impl PlannerConfig {
    /// A reasonable default over the given sampling bounds.
    pub fn new(kind: PlannerKind, bounds: Aabb) -> Self {
        PlannerConfig {
            kind,
            bounds,
            step: 2.5,
            max_samples: 4000,
            goal_bias: 0.1,
            goal_tolerance: 1.0,
            seed: 7,
            spatial_index: true,
        }
    }

    /// Overrides the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the bucketed neighbour index (builder style).
    pub fn with_spatial_index(mut self, enabled: bool) -> Self {
        self.spatial_index = enabled;
        self
    }
}

/// A piecewise-linear, collision-free path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedPath {
    /// Waypoints from start to goal inclusive.
    pub waypoints: Vec<Vec3>,
    /// Number of samples the planner drew.
    pub samples_used: usize,
}

impl PlannedPath {
    /// Geometric length of the path in metres.
    pub fn length(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].distance(&w[1]))
            .sum()
    }

    /// Shortcut pass: repeatedly removes intermediate waypoints whose
    /// bypassing segment is collision-free. This is the first half of the
    /// path-smoothing kernel.
    pub fn shortcut(&self, map: &OctoMap, checker: &CollisionChecker) -> PlannedPath {
        if self.waypoints.len() <= 2 {
            return self.clone();
        }
        let mut out = vec![self.waypoints[0]];
        let mut i = 0;
        while i + 1 < self.waypoints.len() {
            // Greedily find the farthest waypoint reachable in a straight line.
            let mut j = self.waypoints.len() - 1;
            while j > i + 1 {
                if checker.segment_free(map, &self.waypoints[i], &self.waypoints[j]) {
                    break;
                }
                j -= 1;
            }
            out.push(self.waypoints[j]);
            i = j;
        }
        PlannedPath {
            waypoints: out,
            samples_used: self.samples_used,
        }
    }
}

/// The shortest-path planner.
///
/// # Example
///
/// ```
/// use mav_perception::{OctoMap, OctoMapConfig};
/// use mav_planning::{CollisionChecker, PlannerConfig, PlannerKind, ShortestPathPlanner};
/// use mav_types::{Aabb, Vec3};
///
/// let map = OctoMap::new(OctoMapConfig::default(), 32.0);
/// let bounds = Aabb::new(Vec3::new(-20.0, -20.0, 0.5), Vec3::new(20.0, 20.0, 5.0));
/// let planner = ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::Rrt, bounds));
/// let checker = CollisionChecker::new(0.33);
/// let path = planner
///     .plan(&map, &checker, Vec3::new(0.0, 0.0, 2.0), Vec3::new(10.0, 5.0, 2.0))
///     .unwrap();
/// assert!(path.length() >= 11.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShortestPathPlanner {
    config: PlannerConfig,
}

impl ShortestPathPlanner {
    /// Creates a planner.
    pub fn new(config: PlannerConfig) -> Self {
        ShortestPathPlanner { config }
    }

    /// The planner configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Plans a collision-free path from `start` to `goal`.
    ///
    /// # Errors
    ///
    /// Returns [`MavError::PlanningFailed`] when the start or goal is blocked
    /// or the sample budget is exhausted without connecting them.
    pub fn plan(
        &self,
        map: &OctoMap,
        checker: &CollisionChecker,
        start: Vec3,
        goal: Vec3,
    ) -> Result<PlannedPath> {
        if !checker.point_free(map, &start) {
            return Err(MavError::planning_failed(
                self.name(),
                "start position is in collision",
            ));
        }
        if !checker.point_free(map, &goal) {
            return Err(MavError::planning_failed(
                self.name(),
                "goal position is in collision",
            ));
        }
        match self.config.kind {
            PlannerKind::Rrt => self.plan_rrt(map, checker, start, goal),
            PlannerKind::PrmAstar => self.plan_prm(map, checker, start, goal),
        }
    }

    fn name(&self) -> &'static str {
        match self.config.kind {
            PlannerKind::Rrt => "rrt",
            PlannerKind::PrmAstar => "prm-astar",
        }
    }

    fn sample(&self, rng: &mut ChaCha8Rng, goal: &Vec3) -> Vec3 {
        if rng.gen_range(0.0..1.0) < self.config.goal_bias {
            return *goal;
        }
        let b = &self.config.bounds;
        Vec3::new(
            rng.gen_range(b.min.x..=b.max.x),
            rng.gen_range(b.min.y..=b.max.y),
            rng.gen_range(b.min.z..=b.max.z),
        )
    }

    fn plan_rrt(
        &self,
        map: &OctoMap,
        checker: &CollisionChecker,
        start: Vec3,
        goal: Vec3,
    ) -> Result<PlannedPath> {
        with_plan_scratch(|scratch| self.plan_rrt_with(map, checker, start, goal, scratch))
    }

    fn plan_rrt_with(
        &self,
        map: &OctoMap,
        checker: &CollisionChecker,
        start: Vec3,
        goal: Vec3,
        scratch: &mut PlanScratch,
    ) -> Result<PlannedPath> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let PlanScratch {
            nodes,
            parents,
            grid,
            ..
        } = scratch;
        nodes.clear();
        nodes.push(start);
        parents.clear();
        parents.push(0);
        // Bucket index over the tree nodes, sized by the extension step (the
        // distance nearest-neighbour queries typically resolve at). Exact,
        // so the grown tree is identical to the linear-scan tree.
        let mut index = if self.config.spatial_index {
            let cell = self.config.step.max(1e-6);
            let mut index = match grid.take() {
                Some(mut reused) => {
                    reused.reset(&self.config.bounds, cell);
                    reused
                }
                None => PointGrid::new(&self.config.bounds, cell),
            };
            index.insert(start);
            Some(index)
        } else {
            None
        };
        let mut found: Option<PlannedPath> = None;
        for sample_count in 0..self.config.max_samples {
            let target = self.sample(&mut rng, &goal);
            // Nearest node in the tree.
            let nearest_idx = match &index {
                Some(index) => index.nearest(&target).expect("tree is never empty"),
                // `total_cmp` ≡ the historical `partial_cmp().expect()`:
                // squared distances are finite non-negative, so the NaN/±0.0
                // cases where the comparators differ never reach the sort.
                None => nodes
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.distance_squared(&target)
                            .total_cmp(&b.1.distance_squared(&target))
                    })
                    .map(|(i, _)| i)
                    .expect("tree is never empty"),
            };
            let nearest = nodes[nearest_idx];
            // Extend one step towards the sample.
            let dist = nearest.distance(&target);
            let new = if dist <= self.config.step {
                target
            } else {
                nearest + (target - nearest).normalized() * self.config.step
            };
            if !checker.point_free(map, &new) || !checker.segment_free(map, &nearest, &new) {
                continue;
            }
            nodes.push(new);
            parents.push(nearest_idx);
            if let Some(index) = index.as_mut() {
                index.insert(new);
            }
            // Goal check.
            if new.distance(&goal) <= self.config.goal_tolerance
                && checker.segment_free(map, &new, &goal)
            {
                let mut waypoints = vec![goal];
                let mut idx = nodes.len() - 1;
                loop {
                    waypoints.push(nodes[idx]);
                    if idx == 0 {
                        break;
                    }
                    idx = parents[idx];
                }
                waypoints.reverse();
                found = Some(PlannedPath {
                    waypoints,
                    samples_used: sample_count + 1,
                });
                break;
            }
        }
        // Park the bucket index back in the scratch for the next plan.
        *grid = index;
        found.ok_or_else(|| {
            MavError::planning_failed(
                "rrt",
                format!("no path within {} samples", self.config.max_samples),
            )
        })
    }

    fn plan_prm(
        &self,
        map: &OctoMap,
        checker: &CollisionChecker,
        start: Vec3,
        goal: Vec3,
    ) -> Result<PlannedPath> {
        with_plan_scratch(|scratch| self.plan_prm_with(map, checker, start, goal, scratch))
    }

    fn plan_prm_with(
        &self,
        map: &OctoMap,
        checker: &CollisionChecker,
        start: Vec3,
        goal: Vec3,
        scratch: &mut PlanScratch,
    ) -> Result<PlannedPath> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let PlanScratch {
            vertices,
            adjacency,
            candidates,
            grid,
            ..
        } = scratch;
        // Roadmap vertices: start, goal and free-space samples.
        vertices.clear();
        vertices.push(start);
        vertices.push(goal);
        let roadmap_size = (self.config.max_samples / 8).clamp(50, 600);
        let mut attempts = 0usize;
        while vertices.len() < roadmap_size + 2 && attempts < self.config.max_samples {
            attempts += 1;
            let p = self.sample(&mut rng, &goal);
            if checker.point_free(map, &p) {
                vertices.push(p);
            }
        }
        // Connect each vertex to its neighbours within the connection radius.
        // The bucket index generates only the candidate pairs whose buckets
        // overlap the radius ball, and the distance test is hoisted before
        // any map work, so `segment_free` runs exclusively on pairs that are
        // actually connectable. Candidate indices are sorted ascending so the
        // adjacency lists are built in exactly the order of the historical
        // all-pairs loop (A* tie-breaking depends on it).
        let radius = self.config.step * 2.5;
        for list in adjacency.iter_mut() {
            list.clear();
        }
        adjacency.resize_with(vertices.len(), Vec::new);
        let index = if self.config.spatial_index {
            let mut index = match grid.take() {
                Some(mut reused) => {
                    reused.reset(&self.config.bounds, radius.max(1e-6));
                    reused
                }
                None => PointGrid::new(&self.config.bounds, radius.max(1e-6)),
            };
            for v in vertices.iter() {
                index.insert(*v);
            }
            Some(index)
        } else {
            None
        };
        for i in 0..vertices.len() {
            match &index {
                Some(grid) => {
                    candidates.clear();
                    grid.candidates_within(&vertices[i], radius, candidates);
                    candidates.sort_unstable();
                    for &j in candidates.iter() {
                        let j = j as usize;
                        if j <= i {
                            continue;
                        }
                        let d = vertices[i].distance(&vertices[j]);
                        if d <= radius && checker.segment_free(map, &vertices[i], &vertices[j]) {
                            adjacency[i].push((j, d));
                            adjacency[j].push((i, d));
                        }
                    }
                }
                None => {
                    for j in (i + 1)..vertices.len() {
                        let d = vertices[i].distance(&vertices[j]);
                        if d <= radius && checker.segment_free(map, &vertices[i], &vertices[j]) {
                            adjacency[i].push((j, d));
                            adjacency[j].push((i, d));
                        }
                    }
                }
            }
        }
        // A* from vertex 0 (start) to vertex 1 (goal).
        let found = astar(vertices, adjacency, 0, 1);
        // Park the bucket index back in the scratch for the next plan.
        *grid = index;
        let path_indices = found.ok_or_else(|| {
            MavError::planning_failed("prm-astar", "roadmap does not connect start and goal")
        })?;
        let waypoints = path_indices.into_iter().map(|i| vertices[i]).collect();
        Ok(PlannedPath {
            waypoints,
            samples_used: attempts,
        })
    }
}

/// A* over an explicit graph. Returns the vertex indices of the optimal path.
fn astar(
    vertices: &[Vec3],
    adjacency: &[Vec<(usize, f64)>],
    start: usize,
    goal: usize,
) -> Option<Vec<usize>> {
    #[derive(PartialEq)]
    struct Frontier {
        f: f64,
        node: usize,
    }
    impl Eq for Frontier {}
    impl Ord for Frontier {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse ordering: BinaryHeap is a max-heap, we need the min f.
            // `total_cmp` ≡ the historical `partial_cmp().unwrap_or(Equal)`
            // for the finite non-negative f-costs this heap holds (g sums
            // finite edge lengths, h is a distance); unlike the old
            // comparator it cannot silently mis-order a NaN either.
            other.f.total_cmp(&self.f)
        }
    }
    impl PartialOrd for Frontier {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let h = |i: usize| vertices[i].distance(&vertices[goal]);
    let mut open = BinaryHeap::new();
    let mut g: HashMap<usize, f64> = HashMap::new();
    let mut came_from: HashMap<usize, usize> = HashMap::new();
    g.insert(start, 0.0);
    open.push(Frontier {
        f: h(start),
        node: start,
    });
    while let Some(Frontier { node, .. }) = open.pop() {
        if node == goal {
            let mut path = vec![goal];
            let mut current = goal;
            while let Some(&prev) = came_from.get(&current) {
                path.push(prev);
                current = prev;
            }
            path.reverse();
            return Some(path);
        }
        let node_g = g[&node];
        for &(next, cost) in &adjacency[node] {
            let tentative = node_g + cost;
            if tentative < *g.get(&next).unwrap_or(&f64::INFINITY) {
                g.insert(next, tentative);
                came_from.insert(next, node);
                open.push(Frontier {
                    f: tentative + h(next),
                    node: next,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_perception::OctoMapConfig;

    fn bounds() -> Aabb {
        Aabb::new(Vec3::new(-25.0, -25.0, 0.5), Vec3::new(25.0, 25.0, 6.0))
    }

    /// A map with a long wall at x = 8 blocking y ∈ [-10, 10], with open space
    /// around its ends.
    fn wall_map() -> OctoMap {
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 32.0);
        let origin = Vec3::new(0.0, 0.0, 1.0);
        for i in -20..=20 {
            for z in [0.5, 1.5, 2.5, 3.5, 4.5, 5.5] {
                map.insert_ray(&origin, &Vec3::new(8.0, i as f64 * 0.5, z));
            }
        }
        map
    }

    fn check_path(
        path: &PlannedPath,
        map: &OctoMap,
        checker: &CollisionChecker,
        start: Vec3,
        goal: Vec3,
    ) {
        assert!(path.waypoints.len() >= 2);
        assert!(path.waypoints[0].distance(&start) < 1e-9);
        assert!(path.waypoints.last().unwrap().distance(&goal) < 1e-9);
        for w in path.waypoints.windows(2) {
            assert!(
                checker.segment_free(map, &w[0], &w[1]),
                "planned segment {} -> {} collides",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn rrt_plans_in_open_space() {
        let map = OctoMap::new(OctoMapConfig::default(), 32.0);
        let checker = CollisionChecker::new(0.33);
        let planner = ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::Rrt, bounds()));
        let start = Vec3::new(0.0, 0.0, 2.0);
        let goal = Vec3::new(15.0, 10.0, 2.0);
        let path = planner.plan(&map, &checker, start, goal).unwrap();
        check_path(&path, &map, &checker, start, goal);
        assert!(path.length() >= start.distance(&goal) - 1e-6);
        assert!(path.samples_used > 0);
    }

    #[test]
    fn prm_plans_in_open_space() {
        let map = OctoMap::new(OctoMapConfig::default(), 32.0);
        let checker = CollisionChecker::new(0.33);
        let planner = ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::PrmAstar, bounds()));
        let start = Vec3::new(-10.0, -10.0, 2.0);
        let goal = Vec3::new(12.0, 8.0, 3.0);
        let path = planner.plan(&map, &checker, start, goal).unwrap();
        check_path(&path, &map, &checker, start, goal);
    }

    #[test]
    fn planners_route_around_a_wall() {
        let map = wall_map();
        let checker = CollisionChecker::new(0.33);
        let start = Vec3::new(0.0, 0.0, 2.0);
        let goal = Vec3::new(16.0, 0.0, 2.0);
        for kind in [PlannerKind::Rrt, PlannerKind::PrmAstar] {
            let planner = ShortestPathPlanner::new(PlannerConfig::new(kind, bounds()));
            let path = planner.plan(&map, &checker, start, goal).unwrap();
            check_path(&path, &map, &checker, start, goal);
            // The detour around the wall must be meaningfully longer than the
            // straight-line distance.
            assert!(
                path.length() > start.distance(&goal) + 2.0,
                "{kind:?} path suspiciously short: {}",
                path.length()
            );
        }
    }

    #[test]
    fn blocked_start_or_goal_is_an_error() {
        let map = wall_map();
        let checker = CollisionChecker::new(0.33);
        let planner = ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::Rrt, bounds()));
        let on_wall = Vec3::new(8.0, 0.0, 2.0);
        let free = Vec3::new(0.0, 0.0, 2.0);
        assert!(matches!(
            planner.plan(&map, &checker, on_wall, free),
            Err(MavError::PlanningFailed { .. })
        ));
        assert!(matches!(
            planner.plan(&map, &checker, free, on_wall),
            Err(MavError::PlanningFailed { .. })
        ));
    }

    #[test]
    fn shortcut_shortens_paths_and_stays_collision_free() {
        let map = wall_map();
        let checker = CollisionChecker::new(0.33);
        let planner =
            ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::Rrt, bounds()).with_seed(11));
        let start = Vec3::new(0.0, -5.0, 2.0);
        let goal = Vec3::new(16.0, 5.0, 2.0);
        let path = planner.plan(&map, &checker, start, goal).unwrap();
        let short = path.shortcut(&map, &checker);
        assert!(short.length() <= path.length() + 1e-9);
        assert!(short.waypoints.len() <= path.waypoints.len());
        check_path(&short, &map, &checker, start, goal);
    }

    #[test]
    fn planning_is_deterministic_for_a_fixed_seed() {
        let map = wall_map();
        let checker = CollisionChecker::new(0.33);
        let cfg = PlannerConfig::new(PlannerKind::Rrt, bounds()).with_seed(99);
        let a = ShortestPathPlanner::new(cfg)
            .plan(
                &map,
                &checker,
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::new(14.0, 3.0, 2.0),
            )
            .unwrap();
        let b = ShortestPathPlanner::new(cfg)
            .plan(
                &map,
                &checker,
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::new(14.0, 3.0, 2.0),
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn warm_scratch_plans_match_a_cold_thread() {
        // The thread-local scratch must be behaviour-transparent: a plan on a
        // thread whose buffers are warm from unrelated planning equals the
        // same plan on a brand-new thread (cold scratch), for both planners.
        let map = wall_map();
        let checker = CollisionChecker::new(0.33);
        let start = Vec3::new(0.0, 0.0, 2.0);
        let goal = Vec3::new(16.0, 0.0, 2.0);
        for kind in [PlannerKind::Rrt, PlannerKind::PrmAstar] {
            let planner = ShortestPathPlanner::new(PlannerConfig::new(kind, bounds()).with_seed(5));
            let _ = planner.plan(
                &map,
                &checker,
                Vec3::new(0.0, -5.0, 2.0),
                Vec3::new(16.0, 5.0, 2.0),
            );
            let warm = planner.plan(&map, &checker, start, goal).unwrap();
            let cold_planner = planner.clone();
            let cold_map = map.clone();
            let cold = std::thread::spawn(move || {
                cold_planner
                    .plan(&cold_map, &CollisionChecker::new(0.33), start, goal)
                    .unwrap()
            })
            .join()
            .unwrap();
            assert_eq!(
                warm, cold,
                "{kind:?} diverged between warm and cold scratch"
            );
        }
    }

    #[test]
    fn astar_finds_the_cheapest_route() {
        // A small explicit graph where the direct edge is more expensive than
        // the two-hop route.
        let vertices = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::new(5.0, 1.0, 0.0),
        ];
        let adjacency = vec![
            vec![(1usize, 20.0), (2usize, 5.1)],
            vec![(0usize, 20.0), (2usize, 5.1)],
            vec![(0usize, 5.1), (1usize, 5.1)],
        ];
        let path = astar(&vertices, &adjacency, 0, 1).unwrap();
        assert_eq!(path, vec![0, 2, 1]);
        // Unreachable goal.
        let disconnected = vec![vec![], vec![]];
        assert!(astar(&vertices[..2], &disconnected, 0, 1).is_none());
    }
}
