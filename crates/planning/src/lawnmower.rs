//! Lawnmower coverage planning.
//!
//! The Scanning workload covers a rectangular area with a boustrophedon
//! ("lawnmower") sweep: parallel passes separated by the sensor footprint,
//! flown at a fixed altitude. Obstacles are assumed to be absent at scanning
//! altitude, so no collision checking is required (matching the paper).

use mav_types::{MavError, Result, Vec3};
use serde::{Deserialize, Serialize};

/// Configuration of the lawnmower planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LawnmowerConfig {
    /// South-west corner of the area to cover.
    pub origin: Vec3,
    /// Width of the area along +x, metres.
    pub width: f64,
    /// Length of the area along +y, metres.
    pub length: f64,
    /// Spacing between passes (the sensor swath), metres.
    pub lane_spacing: f64,
    /// Altitude of the sweep, metres.
    pub altitude: f64,
}

impl LawnmowerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MavError::InvalidConfig`] when any dimension is not strictly
    /// positive.
    pub fn validate(&self) -> Result<()> {
        if self.width <= 0.0 || self.length <= 0.0 {
            return Err(MavError::invalid_config(
                "coverage area must have positive dimensions",
            ));
        }
        if self.lane_spacing <= 0.0 {
            return Err(MavError::invalid_config("lane spacing must be positive"));
        }
        if self.altitude <= 0.0 {
            return Err(MavError::invalid_config("scan altitude must be positive"));
        }
        Ok(())
    }
}

impl Default for LawnmowerConfig {
    fn default() -> Self {
        LawnmowerConfig {
            origin: Vec3::new(-50.0, -50.0, 0.0),
            width: 100.0,
            length: 100.0,
            lane_spacing: 10.0,
            altitude: 10.0,
        }
    }
}

/// Plans a lawnmower sweep, returning the waypoint sequence (the Scanning
/// workload's motion-planning kernel).
///
/// The sweep runs lanes parallel to the y axis, stepping along x by the lane
/// spacing, alternating direction each lane.
///
/// # Errors
///
/// Returns [`MavError::InvalidConfig`] for degenerate areas.
///
/// # Example
///
/// ```
/// use mav_planning::{plan_lawnmower, LawnmowerConfig};
/// let waypoints = plan_lawnmower(&LawnmowerConfig::default()).unwrap();
/// assert!(waypoints.len() >= 4);
/// ```
pub fn plan_lawnmower(config: &LawnmowerConfig) -> Result<Vec<Vec3>> {
    config.validate()?;
    let lanes = (config.width / config.lane_spacing).ceil() as usize + 1;
    let mut waypoints = Vec::with_capacity(lanes * 2);
    for lane in 0..lanes {
        let x = config.origin.x + (lane as f64 * config.lane_spacing).min(config.width);
        let (y0, y1) = if lane % 2 == 0 {
            (config.origin.y, config.origin.y + config.length)
        } else {
            (config.origin.y + config.length, config.origin.y)
        };
        waypoints.push(Vec3::new(x, y0, config.altitude));
        waypoints.push(Vec3::new(x, y1, config.altitude));
    }
    Ok(waypoints)
}

/// Total length of a waypoint sequence, metres.
pub fn path_length(waypoints: &[Vec3]) -> f64 {
    waypoints.windows(2).map(|w| w[0].distance(&w[1])).sum()
}

/// Fraction of the area covered by a sweep with the given lane spacing and a
/// sensor swath of `swath` metres (1.0 when the swath is at least the lane
/// spacing).
pub fn coverage_fraction(config: &LawnmowerConfig, swath: f64) -> f64 {
    if config.lane_spacing <= 0.0 {
        return 0.0;
    }
    (swath / config.lane_spacing).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_requested_area() {
        let cfg = LawnmowerConfig {
            origin: Vec3::new(0.0, 0.0, 0.0),
            width: 40.0,
            length: 60.0,
            lane_spacing: 10.0,
            altitude: 12.0,
        };
        let wps = plan_lawnmower(&cfg).unwrap();
        assert_eq!(wps.len(), 10); // 5 lanes × 2 endpoints
                                   // Every waypoint at the requested altitude and inside the area.
        for w in &wps {
            assert_eq!(w.z, 12.0);
            assert!(w.x >= 0.0 && w.x <= 40.0);
            assert!(w.y >= 0.0 && w.y <= 60.0);
        }
        // The first and last lanes are at the area's x extremes.
        assert_eq!(wps[0].x, 0.0);
        assert_eq!(wps.last().unwrap().x, 40.0);
        // Alternating sweep direction: consecutive lanes start at opposite y.
        assert_eq!(wps[0].y, 0.0);
        assert_eq!(wps[2].y, 60.0);
    }

    #[test]
    fn total_length_scales_with_area() {
        let small = LawnmowerConfig {
            origin: Vec3::ZERO,
            width: 20.0,
            length: 20.0,
            lane_spacing: 10.0,
            altitude: 10.0,
        };
        let large = LawnmowerConfig {
            width: 80.0,
            length: 80.0,
            ..small
        };
        let l_small = path_length(&plan_lawnmower(&small).unwrap());
        let l_large = path_length(&plan_lawnmower(&large).unwrap());
        assert!(l_large > 3.0 * l_small);
    }

    #[test]
    fn tighter_lanes_increase_path_length_and_coverage() {
        let coarse = LawnmowerConfig {
            lane_spacing: 20.0,
            ..Default::default()
        };
        let fine = LawnmowerConfig {
            lane_spacing: 5.0,
            ..Default::default()
        };
        assert!(
            path_length(&plan_lawnmower(&fine).unwrap())
                > path_length(&plan_lawnmower(&coarse).unwrap())
        );
        assert!(coverage_fraction(&fine, 8.0) > coverage_fraction(&coarse, 8.0));
        assert_eq!(coverage_fraction(&fine, 8.0), 1.0);
        assert_eq!(coverage_fraction(&coarse, 10.0), 0.5);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for bad in [
            LawnmowerConfig {
                width: 0.0,
                ..Default::default()
            },
            LawnmowerConfig {
                length: -5.0,
                ..Default::default()
            },
            LawnmowerConfig {
                lane_spacing: 0.0,
                ..Default::default()
            },
            LawnmowerConfig {
                altitude: 0.0,
                ..Default::default()
            },
        ] {
            assert!(plan_lawnmower(&bad).is_err());
        }
    }
}
