//! Trajectory smoothing: waypoints → dynamically feasible trajectory.
//!
//! Planners return piecewise-linear waypoint chains with sharp corners. The
//! smoothing kernel (a) rounds corners by inserting blend points and (b)
//! assigns a time-parameterised velocity profile that respects the vehicle's
//! maximum velocity and acceleration — sharp turns would otherwise demand
//! high accelerations and waste energy, which is exactly why the paper has
//! this kernel.

use mav_types::{MavError, Result, SimTime, Trajectory, TrajectoryPoint, Vec3};
use serde::{Deserialize, Serialize};

/// Configuration of the smoothing kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmootherConfig {
    /// Maximum cruise speed of the produced trajectory, m/s.
    pub max_velocity: f64,
    /// Maximum acceleration, m/s².
    pub max_acceleration: f64,
    /// Corner blend distance, metres: corners are cut starting this far from
    /// the waypoint.
    pub corner_radius: f64,
    /// Spatial sampling interval of the output trajectory, metres.
    pub sample_spacing: f64,
}

impl SmootherConfig {
    /// Creates a configuration from the vehicle envelope.
    ///
    /// # Panics
    ///
    /// Panics if either limit is not strictly positive.
    pub fn new(max_velocity: f64, max_acceleration: f64) -> Self {
        assert!(max_velocity > 0.0 && max_acceleration > 0.0);
        SmootherConfig {
            max_velocity,
            max_acceleration,
            corner_radius: 1.0,
            sample_spacing: 0.5,
        }
    }

    /// Overrides the maximum velocity (builder style). Values are clamped to
    /// be strictly positive.
    pub fn with_max_velocity(mut self, v: f64) -> Self {
        self.max_velocity = v.max(0.1);
        self
    }
}

impl Default for SmootherConfig {
    fn default() -> Self {
        SmootherConfig::new(10.0, 5.0)
    }
}

/// The path-smoothing kernel.
///
/// # Example
///
/// ```
/// use mav_planning::{PathSmoother, SmootherConfig};
/// use mav_types::{SimTime, Vec3};
///
/// let smoother = PathSmoother::new(SmootherConfig::new(8.0, 4.0));
/// let waypoints = vec![
///     Vec3::new(0.0, 0.0, 2.0),
///     Vec3::new(10.0, 0.0, 2.0),
///     Vec3::new(10.0, 10.0, 2.0),
/// ];
/// let traj = smoother.smooth(&waypoints, SimTime::ZERO).unwrap();
/// assert!(traj.max_speed() <= 8.0 + 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathSmoother {
    config: SmootherConfig,
}

impl PathSmoother {
    /// Creates a smoother.
    pub fn new(config: SmootherConfig) -> Self {
        PathSmoother { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SmootherConfig {
        &self.config
    }

    /// Smooths a waypoint chain into a time-parameterised trajectory starting
    /// at `start_time`.
    ///
    /// # Errors
    ///
    /// Returns [`MavError::PlanningFailed`] when fewer than two waypoints are
    /// provided.
    pub fn smooth(&self, waypoints: &[Vec3], start_time: SimTime) -> Result<Trajectory> {
        if waypoints.len() < 2 {
            return Err(MavError::planning_failed(
                "smoothing",
                "need at least two waypoints",
            ));
        }
        let rounded = self.round_corners(waypoints);
        let sampled = self.resample(&rounded);
        Ok(self.time_parameterise(&sampled, start_time))
    }

    /// Cuts corners: each interior waypoint is replaced by two blend points a
    /// corner-radius before and after it.
    fn round_corners(&self, waypoints: &[Vec3]) -> Vec<Vec3> {
        if waypoints.len() <= 2 {
            return waypoints.to_vec();
        }
        let r = self.config.corner_radius;
        let mut out = vec![waypoints[0]];
        for i in 1..waypoints.len() - 1 {
            let prev = waypoints[i - 1];
            let here = waypoints[i];
            let next = waypoints[i + 1];
            let d_in = here.distance(&prev);
            let d_out = here.distance(&next);
            let cut_in = r.min(d_in / 2.0);
            let cut_out = r.min(d_out / 2.0);
            let before = here + (prev - here).normalized() * cut_in;
            let after = here + (next - here).normalized() * cut_out;
            out.push(before);
            // The midpoint between the blend points approximates the arc.
            out.push(before.lerp(&after, 0.5));
            out.push(after);
        }
        out.push(*waypoints.last().expect("non-empty"));
        out
    }

    /// Resamples a polyline at roughly `sample_spacing` intervals.
    fn resample(&self, waypoints: &[Vec3]) -> Vec<Vec3> {
        let mut out = vec![waypoints[0]];
        for w in waypoints.windows(2) {
            let dist = w[0].distance(&w[1]);
            let steps = (dist / self.config.sample_spacing).ceil().max(1.0) as usize;
            for i in 1..=steps {
                out.push(w[0].lerp(&w[1], i as f64 / steps as f64));
            }
        }
        out
    }

    /// Assigns a trapezoidal velocity profile along the arc length: accelerate
    /// at `max_acceleration`, cruise at `max_velocity`, decelerate to stop at
    /// the end. Corner curvature additionally caps the local speed.
    fn time_parameterise(&self, points: &[Vec3], start_time: SimTime) -> Trajectory {
        let n = points.len();
        let v_max = self.config.max_velocity;
        let a_max = self.config.max_acceleration;
        // Arc length from the start to each point.
        let mut arc = vec![0.0f64; n];
        for i in 1..n {
            arc[i] = arc[i - 1] + points[i - 1].distance(&points[i]);
        }
        let total = arc[n - 1];
        // Speed limit at each point from the trapezoid (accelerating from the
        // start, decelerating towards the end) plus a curvature cap.
        let mut speed = vec![0.0f64; n];
        for i in 0..n {
            let s = arc[i];
            let accel_limit = (2.0 * a_max * s).sqrt();
            let decel_limit = (2.0 * a_max * (total - s)).sqrt();
            let mut v = v_max.min(accel_limit).min(decel_limit);
            // Curvature cap: slow down where the heading changes sharply.
            if i > 0 && i + 1 < n {
                let d_in = (points[i] - points[i - 1]).normalized();
                let d_out = (points[i + 1] - points[i]).normalized();
                let turn = 1.0 - d_in.dot(&d_out); // 0 straight, 2 reversal
                v *= (1.0 - 0.5 * turn).clamp(0.3, 1.0);
            }
            speed[i] = v.max(0.0);
        }
        // Integrate time along the arc using the average of segment-end speeds.
        let mut trajectory = Trajectory::new();
        let mut t = start_time;
        for i in 0..n {
            let velocity = if i + 1 < n {
                (points[i + 1] - points[i]).normalized() * speed[i]
            } else {
                Vec3::ZERO
            };
            let acceleration = if i > 0 {
                let ds = (arc[i] - arc[i - 1]).max(1e-6);
                let dv = speed[i] - speed[i - 1];
                (points[i] - points[i - 1]).normalized() * (dv * speed[i].max(0.1) / ds)
            } else {
                Vec3::ZERO
            };
            trajectory.push(TrajectoryPoint {
                position: points[i],
                velocity,
                acceleration: acceleration.clamp_norm(a_max),
                yaw: velocity.heading(),
                time: t,
            });
            if i + 1 < n {
                let ds = points[i].distance(&points[i + 1]);
                let avg_v = ((speed[i] + speed[i + 1]) / 2.0).max(0.1);
                t += mav_types::SimDuration::from_secs(ds / avg_v);
            }
        }
        trajectory
    }
}

impl Default for PathSmoother {
    fn default() -> Self {
        PathSmoother::new(SmootherConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shaped() -> Vec<Vec3> {
        vec![
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(20.0, 0.0, 2.0),
            Vec3::new(20.0, 20.0, 2.0),
        ]
    }

    #[test]
    fn endpoints_are_preserved() {
        let smoother = PathSmoother::default();
        let traj = smoother.smooth(&l_shaped(), SimTime::ZERO).unwrap();
        assert!(traj.first().unwrap().position.distance(&l_shaped()[0]) < 1e-9);
        assert!(traj.last().unwrap().position.distance(&l_shaped()[2]) < 1e-9);
        // Trajectory starts and ends at rest.
        assert!(traj.first().unwrap().velocity.norm() < 1e-9);
        assert!(traj.last().unwrap().velocity.norm() < 1e-9);
    }

    #[test]
    fn velocity_and_acceleration_limits_hold() {
        let cfg = SmootherConfig::new(6.0, 3.0);
        let smoother = PathSmoother::new(cfg);
        let traj = smoother.smooth(&l_shaped(), SimTime::ZERO).unwrap();
        assert!(traj.max_speed() <= 6.0 + 1e-9);
        assert!(traj.max_acceleration() <= 3.0 + 1e-9);
        assert!(traj.duration_secs() > 0.0);
    }

    #[test]
    fn corner_is_cut() {
        let smoother = PathSmoother::default();
        let traj = smoother.smooth(&l_shaped(), SimTime::ZERO).unwrap();
        // The sharp corner waypoint (20, 0) should not be visited exactly: the
        // blend replaces it with nearby points.
        let corner = Vec3::new(20.0, 0.0, 2.0);
        let min_dist = traj
            .points()
            .iter()
            .map(|p| p.position.distance(&corner))
            .fold(f64::INFINITY, f64::min);
        assert!(min_dist > 0.2, "corner visited too closely: {min_dist}");
        // But the path still passes near the corner region.
        assert!(min_dist < 2.0);
    }

    #[test]
    fn slower_profile_takes_longer() {
        let fast = PathSmoother::new(SmootherConfig::new(10.0, 5.0));
        let slow = PathSmoother::new(SmootherConfig::new(2.0, 5.0));
        let t_fast = fast
            .smooth(&l_shaped(), SimTime::ZERO)
            .unwrap()
            .duration_secs();
        let t_slow = slow
            .smooth(&l_shaped(), SimTime::ZERO)
            .unwrap()
            .duration_secs();
        assert!(t_slow > 2.0 * t_fast, "slow {t_slow} vs fast {t_fast}");
    }

    #[test]
    fn straight_line_cruises_at_max_velocity() {
        let smoother = PathSmoother::new(SmootherConfig::new(8.0, 4.0));
        let traj = smoother
            .smooth(
                &[Vec3::new(0.0, 0.0, 2.0), Vec3::new(100.0, 0.0, 2.0)],
                SimTime::ZERO,
            )
            .unwrap();
        assert!((traj.max_speed() - 8.0).abs() < 0.5);
        // Duration should be close to distance/v plus accel/decel overhead.
        let ideal = 100.0 / 8.0;
        assert!(traj.duration_secs() > ideal);
        assert!(traj.duration_secs() < ideal * 2.0);
    }

    #[test]
    fn timestamps_are_monotone() {
        let smoother = PathSmoother::default();
        let traj = smoother
            .smooth(&l_shaped(), SimTime::from_secs(5.0))
            .unwrap();
        assert!(traj.first().unwrap().time.as_secs() >= 5.0);
        let times: Vec<f64> = traj.points().iter().map(|p| p.time.as_secs()).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn too_few_waypoints_is_an_error() {
        let smoother = PathSmoother::default();
        assert!(smoother.smooth(&[Vec3::ZERO], SimTime::ZERO).is_err());
        assert!(smoother.smooth(&[], SimTime::ZERO).is_err());
    }

    #[test]
    fn builder_clamps_velocity() {
        let cfg = SmootherConfig::default().with_max_velocity(0.0);
        assert!(cfg.max_velocity > 0.0);
    }
}
