//! Collision checking against the occupancy map.
//!
//! The collision-check kernel is invoked continuously while the MAV follows a
//! trajectory: it verifies that the remaining plan still avoids every occupied
//! voxel of the (continuously updated) OctoMap, and raises a re-planning
//! request when it does not.

use mav_perception::{Occupancy, OctoMap};
use mav_types::{Trajectory, Vec3};
use serde::{Deserialize, Serialize};

/// One detected obstruction of a trajectory: where on the plan it was found
/// and, when the map could attribute it, which occupied voxel blocks it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionHit {
    /// Index of the first colliding trajectory sample.
    pub index: usize,
    /// Centre of the occupied voxel blocking that sample or its approach
    /// segment; `None` when the obstruction is not an occupied voxel (a
    /// conservative checker rejecting unknown space).
    pub blocking_voxel: Option<Vec3>,
}

/// Collision checker bound to a vehicle radius.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollisionChecker {
    /// Vehicle collision radius in metres (half the diagonal width).
    pub vehicle_radius: f64,
    /// Treat unknown space as blocked (`true` for conservative planners).
    pub unknown_is_blocked: bool,
}

impl CollisionChecker {
    /// Creates a checker for a vehicle of the given radius that treats unknown
    /// space as free (the MAVBench applications plan optimistically and rely
    /// on continuous re-checking).
    pub fn new(vehicle_radius: f64) -> Self {
        assert!(vehicle_radius > 0.0, "vehicle radius must be positive");
        CollisionChecker {
            vehicle_radius,
            unknown_is_blocked: false,
        }
    }

    /// Conservative variant that refuses to enter unobserved space.
    pub fn conservative(vehicle_radius: f64) -> Self {
        CollisionChecker {
            unknown_is_blocked: true,
            ..CollisionChecker::new(vehicle_radius)
        }
    }

    /// Returns `true` when the vehicle can occupy `point` according to `map`.
    pub fn point_free(&self, map: &OctoMap, point: &Vec3) -> bool {
        if self.unknown_is_blocked && map.query(point) == Occupancy::Unknown {
            return false;
        }
        !map.is_occupied_with_inflation(point, self.vehicle_radius)
    }

    /// Returns `true` when the straight segment between `a` and `b` is free.
    pub fn segment_free(&self, map: &OctoMap, a: &Vec3, b: &Vec3) -> bool {
        if self.unknown_is_blocked
            && (map.query(a) == Occupancy::Unknown || map.query(b) == Occupancy::Unknown)
        {
            return false;
        }
        map.segment_free(a, b, self.vehicle_radius)
    }

    /// Checks the portion of a trajectory from sample index `from_index`
    /// onward. Returns the index of the first colliding sample, or `None` when
    /// the trajectory is free.
    pub fn first_collision(
        &self,
        map: &OctoMap,
        trajectory: &Trajectory,
        from_index: usize,
    ) -> Option<usize> {
        self.first_collision_report(map, trajectory, from_index)
            .map(|hit| hit.index)
    }

    /// [`CollisionChecker::first_collision`] with the blocking-voxel report
    /// (PR 5): the same walk, but each query runs through the map's
    /// voxel-reporting variants (whose `Some`/`None` agrees exactly with the
    /// predicates, pinned in `mav_perception`'s tests), so a failing check
    /// surfaces the occupied voxel that caused it in the *same* corridor +
    /// sampled pass that detects it — the caller (the collision monitor) aims
    /// its alert at the real obstruction without a second sampled-predicate
    /// run. The index decision is identical to
    /// [`CollisionChecker::first_collision`].
    pub fn first_collision_report(
        &self,
        map: &OctoMap,
        trajectory: &Trajectory,
        from_index: usize,
    ) -> Option<CollisionHit> {
        let points = trajectory.points();
        for (i, p) in points.iter().enumerate().skip(from_index) {
            // The point query, mirroring `point_free`: the conservative
            // unknown-space rejection has no occupied voxel to blame.
            if self.unknown_is_blocked && map.query(&p.position) == Occupancy::Unknown {
                return Some(CollisionHit {
                    index: i,
                    blocking_voxel: None,
                });
            }
            if let Some(voxel) = map.blocking_voxel_with_inflation(&p.position, self.vehicle_radius)
            {
                return Some(CollisionHit {
                    index: i,
                    blocking_voxel: Some(voxel),
                });
            }
            // The approach segment, mirroring `segment_free`.
            if i + 1 < points.len() {
                let next = &points[i + 1].position;
                if self.unknown_is_blocked
                    && (map.query(&p.position) == Occupancy::Unknown
                        || map.query(next) == Occupancy::Unknown)
                {
                    return Some(CollisionHit {
                        index: i + 1,
                        blocking_voxel: None,
                    });
                }
                if let Some(voxel) =
                    map.segment_blocking_voxel(&p.position, next, self.vehicle_radius)
                {
                    return Some(CollisionHit {
                        index: i + 1,
                        blocking_voxel: Some(voxel),
                    });
                }
            }
        }
        None
    }

    /// Convenience wrapper: `true` when the whole trajectory is collision-free.
    pub fn trajectory_free(&self, map: &OctoMap, trajectory: &Trajectory) -> bool {
        self.first_collision(map, trajectory, 0).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_perception::OctoMapConfig;
    use mav_types::{SimTime, TrajectoryPoint};

    /// Builds a map with a wall at x = 5 spanning y ∈ [-3, 3], z ∈ [0, 3].
    fn wall_map() -> OctoMap {
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.25), 32.0);
        let origin = Vec3::new(0.0, 0.0, 1.0);
        for i in -12..=12 {
            for z in [0.5, 1.0, 1.5, 2.0, 2.5] {
                map.insert_ray(&origin, &Vec3::new(5.0, i as f64 * 0.25, z));
            }
        }
        map
    }

    #[test]
    fn points_near_the_wall_are_blocked() {
        let map = wall_map();
        let cc = CollisionChecker::new(0.3);
        assert!(!cc.point_free(&map, &Vec3::new(5.0, 0.0, 1.0)));
        assert!(cc.point_free(&map, &Vec3::new(2.0, 0.0, 1.0)));
    }

    #[test]
    fn segments_through_the_wall_are_blocked() {
        let map = wall_map();
        let cc = CollisionChecker::new(0.3);
        assert!(!cc.segment_free(&map, &Vec3::new(0.0, 0.0, 1.0), &Vec3::new(8.0, 0.0, 1.0)));
        assert!(cc.segment_free(&map, &Vec3::new(0.0, 0.0, 1.0), &Vec3::new(3.5, 0.0, 1.0)));
    }

    #[test]
    fn conservative_checker_blocks_unknown_space() {
        let map = wall_map();
        let optimistic = CollisionChecker::new(0.3);
        let conservative = CollisionChecker::conservative(0.3);
        // A far-away never-observed point.
        let unknown = Vec3::new(-20.0, -20.0, 5.0);
        assert!(optimistic.point_free(&map, &unknown));
        assert!(!conservative.point_free(&map, &unknown));
        assert!(!conservative.segment_free(&map, &unknown, &Vec3::new(-19.0, -20.0, 5.0)));
    }

    #[test]
    fn trajectory_collision_index() {
        let map = wall_map();
        let cc = CollisionChecker::new(0.3);
        let mut traj = Trajectory::new();
        for (i, x) in [0.0, 2.0, 4.0, 6.0, 8.0].iter().enumerate() {
            traj.push(TrajectoryPoint::stationary(
                Vec3::new(*x, 0.0, 1.0),
                SimTime::from_secs(i as f64),
            ));
        }
        let hit = cc.first_collision(&map, &traj, 0);
        assert!(hit.is_some());
        assert!(
            hit.unwrap() >= 2,
            "collision should be at/after the wall, got {hit:?}"
        );
        assert!(!cc.trajectory_free(&map, &traj));
        // Re-checking only the tail beyond the wall still reports a collision
        // at the wall crossing segment.
        let free_traj = Trajectory::from_waypoints(
            &[Vec3::new(0.0, -8.0, 1.0), Vec3::new(8.0, -8.0, 1.0)],
            2.0,
            SimTime::ZERO,
        );
        assert!(cc.trajectory_free(&map, &free_traj));
    }

    #[test]
    fn collision_report_carries_the_blocking_voxel() {
        let map = wall_map();
        let cc = CollisionChecker::new(0.3);
        let mut traj = Trajectory::new();
        for (i, x) in [0.0, 2.0, 4.0, 6.0, 8.0].iter().enumerate() {
            traj.push(TrajectoryPoint::stationary(
                Vec3::new(*x, 0.0, 1.0),
                SimTime::from_secs(i as f64),
            ));
        }
        let hit = cc.first_collision_report(&map, &traj, 0).unwrap();
        // The index decision must match the plain query exactly.
        assert_eq!(Some(hit.index), cc.first_collision(&map, &traj, 0));
        // The blocking voxel is a real occupied voxel at the wall.
        let voxel = hit.blocking_voxel.expect("wall collisions have a voxel");
        assert_eq!(map.query(&voxel), mav_perception::Occupancy::Occupied);
        assert!(
            (voxel.x - 5.0).abs() < 1.0,
            "blocking voxel far from the wall: {voxel:?}"
        );
        // A free trajectory reports nothing.
        let free_traj = Trajectory::from_waypoints(
            &[Vec3::new(0.0, -8.0, 1.0), Vec3::new(8.0, -8.0, 1.0)],
            2.0,
            SimTime::ZERO,
        );
        assert!(cc.first_collision_report(&map, &free_traj, 0).is_none());
        // A conservative checker rejecting unknown space has no occupied
        // voxel to blame.
        let conservative = CollisionChecker::conservative(0.3);
        let unknown_traj = Trajectory::from_waypoints(
            &[Vec3::new(-20.0, -20.0, 5.0), Vec3::new(-19.0, -20.0, 5.0)],
            1.0,
            SimTime::ZERO,
        );
        let hit = conservative
            .first_collision_report(&map, &unknown_traj, 0)
            .unwrap();
        assert_eq!(hit.blocking_voxel, None);
    }

    #[test]
    #[should_panic]
    fn zero_radius_rejected() {
        let _ = CollisionChecker::new(0.0);
    }
}
