//! Scalar unit newtypes for power, energy and clock frequency.
//!
//! The MAVBench evaluation constantly mixes quantities measured in watts,
//! joules/kilojoules, gigahertz and milliamp-hours. Newtypes keep those apart
//! at compile time and provide the small amount of arithmetic the energy and
//! compute models need.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Electrical power in watts.
///
/// # Example
///
/// ```
/// use mav_types::{Power, SimDuration};
/// let rotors = Power::from_watts(286.8);
/// let energy = rotors.over(SimDuration::from_secs(10.0));
/// assert!((energy.as_joules() - 2868.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero watts.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power value from watts. Negative inputs are clamped to zero
    /// (the models in this workspace never produce regenerative power).
    pub fn from_watts(w: f64) -> Self {
        Power(if w.is_finite() { w.max(0.0) } else { 0.0 })
    }

    /// The power in watts.
    pub fn as_watts(&self) -> f64 {
        self.0
    }

    /// Energy delivered at this power over `duration`.
    pub fn over(&self, duration: SimDuration) -> Energy {
        Energy::from_joules(self.0 * duration.as_secs())
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power::from_watts(self.0 * rhs)
    }
}

impl std::iter::Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

/// Energy in joules.
///
/// # Example
///
/// ```
/// use mav_types::Energy;
/// let e = Energy::from_kilojoules(1.5);
/// assert_eq!(e.as_joules(), 1500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero joules.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy value from joules. Negative inputs are clamped to
    /// zero.
    pub fn from_joules(j: f64) -> Self {
        Energy(if j.is_finite() { j.max(0.0) } else { 0.0 })
    }

    /// Creates an energy value from kilojoules.
    pub fn from_kilojoules(kj: f64) -> Self {
        Energy::from_joules(kj * 1000.0)
    }

    /// Creates an energy value from a battery capacity in milliamp-hours at
    /// the given nominal voltage.
    pub fn from_mah(mah: f64, volts: f64) -> Self {
        // mAh * V = mWh; * 3.6 = joules.
        Energy::from_joules(mah * volts * 3.6)
    }

    /// The energy in joules.
    pub fn as_joules(&self) -> f64 {
        self.0
    }

    /// The energy in kilojoules.
    pub fn as_kilojoules(&self) -> f64 {
        self.0 / 1000.0
    }

    /// The energy expressed as coulombs at a given voltage (charge = E / V).
    ///
    /// Returns zero when `volts` is not strictly positive.
    pub fn as_coulombs(&self, volts: f64) -> f64 {
        if volts > 0.0 {
            self.0 / volts
        } else {
            0.0
        }
    }

    /// Fraction of this energy relative to `total`, clamped to `[0, 1]`.
    pub fn fraction_of(&self, total: Energy) -> f64 {
        if total.0 <= 0.0 {
            0.0
        } else {
            (self.0 / total.0).clamp(0.0, 1.0)
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy::from_joules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy::from_joules(self.0 * rhs)
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        if rhs.0 == 0.0 {
            0.0
        } else {
            self.0 / rhs.0
        }
    }
}

impl std::iter::Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2} kJ", self.as_kilojoules())
        } else {
            write!(f, "{:.2} J", self.0)
        }
    }
}

/// Processor clock frequency in gigahertz.
///
/// The MAVBench TX2 sweep uses 0.8, 1.5 and 2.2 GHz operating points.
///
/// # Example
///
/// ```
/// use mav_types::Frequency;
/// let base = Frequency::from_ghz(2.2);
/// let slow = Frequency::from_ghz(0.8);
/// assert!((base.speedup_over(slow) - 2.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite — a zero-frequency
    /// processor makes every latency model degenerate.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(
            ghz.is_finite() && ghz > 0.0,
            "frequency must be positive, got {ghz}"
        );
        Frequency(ghz)
    }

    /// The frequency in gigahertz.
    pub fn as_ghz(&self) -> f64 {
        self.0
    }

    /// The frequency in hertz.
    pub fn as_hz(&self) -> f64 {
        self.0 * 1e9
    }

    /// Ratio `self / other`: how many times faster a serial kernel runs at
    /// `self` compared to `other`.
    pub fn speedup_over(&self, other: Frequency) -> f64 {
        self.0 / other.0
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Frequency::from_ghz(2.2)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GHz", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_duration_is_energy() {
        let p = Power::from_watts(100.0);
        let e = p.over(SimDuration::from_secs(90.0));
        assert_eq!(e.as_joules(), 9000.0);
        assert_eq!(e.as_kilojoules(), 9.0);
    }

    #[test]
    fn power_clamps_and_sums() {
        assert_eq!(Power::from_watts(-5.0).as_watts(), 0.0);
        let total: Power = [10.0, 20.0, 30.0]
            .iter()
            .map(|w| Power::from_watts(*w))
            .sum();
        assert_eq!(total.as_watts(), 60.0);
        assert_eq!((Power::from_watts(10.0) * 2.0).as_watts(), 20.0);
    }

    #[test]
    fn energy_conversions() {
        let e = Energy::from_mah(5000.0, 11.1);
        // 5000 mAh at 11.1 V = 55.5 Wh = 199.8 kJ.
        assert!((e.as_kilojoules() - 199.8).abs() < 1e-6);
        assert!((e.as_coulombs(11.1) - 18000.0).abs() < 1e-6);
        assert_eq!(Energy::from_joules(-1.0).as_joules(), 0.0);
        assert_eq!(Energy::from_joules(10.0).as_coulombs(0.0), 0.0);
    }

    #[test]
    fn energy_arithmetic_saturates() {
        let a = Energy::from_joules(5.0);
        let b = Energy::from_joules(8.0);
        assert_eq!((a - b).as_joules(), 0.0);
        assert_eq!((b - a).as_joules(), 3.0);
        assert_eq!((a + b).as_joules(), 13.0);
        assert_eq!(b / a, 1.6);
        assert_eq!(a / Energy::ZERO, 0.0);
    }

    #[test]
    fn energy_fraction() {
        let total = Energy::from_kilojoules(100.0);
        let used = Energy::from_kilojoules(25.0);
        assert_eq!(used.fraction_of(total), 0.25);
        assert_eq!(total.fraction_of(used), 1.0); // clamped
        assert_eq!(used.fraction_of(Energy::ZERO), 0.0);
    }

    #[test]
    fn frequency_speedup() {
        let hi = Frequency::from_ghz(2.2);
        let lo = Frequency::from_ghz(0.8);
        assert!(hi.speedup_over(lo) > 2.7);
        assert!((lo.speedup_over(hi) - 0.8 / 2.2).abs() < 1e-12);
        assert_eq!(Frequency::default().as_ghz(), 2.2);
        assert_eq!(hi.as_hz(), 2.2e9);
    }

    #[test]
    #[should_panic]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_ghz(0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Power::from_watts(1.0)).is_empty());
        assert!(!format!("{}", Energy::from_joules(1.0)).is_empty());
        assert!(!format!("{}", Energy::from_kilojoules(2.0)).is_empty());
        assert!(!format!("{}", Frequency::from_ghz(1.5)).is_empty());
    }
}
