//! Time-parameterised trajectories produced by planners and consumed by the
//! control stage.
//!
//! A [`Trajectory`] is the MAVBench "MultiDOFTrajectory": an ordered list of
//! [`TrajectoryPoint`]s, each carrying position, velocity, acceleration and a
//! timestamp on the mission clock. Planners emit piecewise-linear
//! trajectories; the smoothing kernel re-times them and rounds the corners;
//! the path-tracking kernel samples them.

use crate::time::SimTime;
use crate::vector::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single sample of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Position in metres.
    pub position: Vec3,
    /// Velocity in metres per second.
    pub velocity: Vec3,
    /// Acceleration in metres per second squared.
    pub acceleration: Vec3,
    /// Yaw in radians.
    pub yaw: f64,
    /// Time on the mission clock at which the vehicle should occupy this
    /// sample.
    pub time: SimTime,
}

impl TrajectoryPoint {
    /// Creates a sample with zero velocity and acceleration at `time`.
    pub fn stationary(position: Vec3, time: SimTime) -> Self {
        TrajectoryPoint {
            position,
            velocity: Vec3::ZERO,
            acceleration: Vec3::ZERO,
            yaw: 0.0,
            time,
        }
    }

    /// Creates a sample with the given velocity.
    pub fn moving(position: Vec3, velocity: Vec3, time: SimTime) -> Self {
        TrajectoryPoint {
            position,
            velocity,
            acceleration: Vec3::ZERO,
            yaw: velocity.heading(),
            time,
        }
    }
}

/// An ordered, time-parameterised sequence of trajectory points.
///
/// # Example
///
/// ```
/// use mav_types::{Trajectory, TrajectoryPoint, Vec3, SimTime};
/// let mut t = Trajectory::new();
/// t.push(TrajectoryPoint::stationary(Vec3::ZERO, SimTime::ZERO));
/// t.push(TrajectoryPoint::stationary(Vec3::new(10.0, 0.0, 0.0), SimTime::from_secs(5.0)));
/// assert_eq!(t.length(), 10.0);
/// let mid = t.sample(SimTime::from_secs(2.5)).unwrap();
/// assert!((mid.position.x - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<TrajectoryPoint>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory { points: Vec::new() }
    }

    /// Creates a trajectory from a list of waypoints travelled at a constant
    /// speed, starting at `start_time`.
    ///
    /// Consecutive duplicate waypoints are preserved but given identical
    /// timestamps.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive.
    pub fn from_waypoints(waypoints: &[Vec3], speed: f64, start_time: SimTime) -> Self {
        assert!(speed > 0.0, "waypoint speed must be positive, got {speed}");
        let mut t = Trajectory::new();
        let mut clock = start_time;
        let mut prev: Option<Vec3> = None;
        for &wp in waypoints {
            if let Some(p) = prev {
                let dist = p.distance(&wp);
                clock += crate::time::SimDuration::from_secs(dist / speed);
                let vel = (wp - p).normalized() * speed;
                t.push(TrajectoryPoint::moving(wp, vel, clock));
            } else {
                t.push(TrajectoryPoint::stationary(wp, clock));
            }
            prev = Some(wp);
        }
        t
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the point's timestamp is earlier than the
    /// last point's (trajectories are monotone in time).
    pub fn push(&mut self, point: TrajectoryPoint) {
        if let Some(last) = self.points.last() {
            debug_assert!(
                point.time >= last.time,
                "trajectory timestamps must be non-decreasing"
            );
        }
        self.points.push(point);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the trajectory has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Immutable access to the samples.
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// First sample, if any.
    pub fn first(&self) -> Option<&TrajectoryPoint> {
        self.points.first()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<&TrajectoryPoint> {
        self.points.last()
    }

    /// Iterator over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, TrajectoryPoint> {
        self.points.iter()
    }

    /// Total geometric length of the piecewise-linear path, in metres.
    pub fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].position.distance(&w[1].position))
            .sum()
    }

    /// Total duration from the first to the last sample, in seconds.
    pub fn duration_secs(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => (b.time - a.time).as_secs(),
            _ => 0.0,
        }
    }

    /// Largest velocity magnitude over all samples, metres per second.
    pub fn max_speed(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.velocity.norm())
            .fold(0.0, f64::max)
    }

    /// Largest acceleration magnitude over all samples, metres per second
    /// squared.
    pub fn max_acceleration(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.acceleration.norm())
            .fold(0.0, f64::max)
    }

    /// Linearly interpolates the trajectory at mission time `time`.
    ///
    /// Returns `None` for an empty trajectory. Times before the first sample
    /// return the first sample; times after the last sample return the last
    /// sample (the vehicle holds position at the end of the plan).
    pub fn sample(&self, time: SimTime) -> Option<TrajectoryPoint> {
        let first = self.points.first()?;
        let last = self.points.last()?;
        if time <= first.time {
            return Some(*first);
        }
        if time >= last.time {
            return Some(*last);
        }
        // Find the segment containing `time` (points are sorted by time).
        let idx = self
            .points
            .windows(2)
            .position(|w| w[0].time <= time && time <= w[1].time)?;
        let a = &self.points[idx];
        let b = &self.points[idx + 1];
        let span = (b.time - a.time).as_secs();
        let t = if span <= f64::EPSILON {
            0.0
        } else {
            (time - a.time).as_secs() / span
        };
        Some(TrajectoryPoint {
            position: a.position.lerp(&b.position, t),
            velocity: a.velocity.lerp(&b.velocity, t),
            acceleration: a.acceleration.lerp(&b.acceleration, t),
            yaw: a.yaw + (b.yaw - a.yaw) * t,
            time,
        })
    }

    /// Concatenates `other` onto the end of this trajectory.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other` begins before this trajectory ends.
    pub fn extend(&mut self, other: &Trajectory) {
        for p in &other.points {
            self.push(*p);
        }
    }
}

impl FromIterator<TrajectoryPoint> for Trajectory {
    fn from_iter<I: IntoIterator<Item = TrajectoryPoint>>(iter: I) -> Self {
        let mut t = Trajectory::new();
        for p in iter {
            t.push(p);
        }
        t
    }
}

impl<'a> IntoIterator for &'a Trajectory {
    type Item = &'a TrajectoryPoint;
    type IntoIter = std::slice::Iter<'a, TrajectoryPoint>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl fmt::Display for Trajectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trajectory[{} points, {:.1} m, {:.1} s]",
            self.len(),
            self.length(),
            self.duration_secs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn straight_line() -> Trajectory {
        Trajectory::from_waypoints(
            &[
                Vec3::ZERO,
                Vec3::new(10.0, 0.0, 0.0),
                Vec3::new(10.0, 10.0, 0.0),
            ],
            2.0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn waypoint_construction_timing() {
        let t = straight_line();
        assert_eq!(t.len(), 3);
        assert_eq!(t.length(), 20.0);
        assert_eq!(t.duration_secs(), 10.0);
        assert!((t.max_speed() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_interpolates_and_clamps() {
        let t = straight_line();
        let before = t.sample(SimTime::ZERO).unwrap();
        assert_eq!(before.position, Vec3::ZERO);
        let mid = t.sample(SimTime::from_secs(2.5)).unwrap();
        assert!((mid.position.x - 5.0).abs() < 1e-9);
        assert!((mid.position.y).abs() < 1e-9);
        let after = t.sample(SimTime::from_secs(100.0)).unwrap();
        assert_eq!(after.position, Vec3::new(10.0, 10.0, 0.0));
    }

    #[test]
    fn empty_trajectory_behaviour() {
        let t = Trajectory::new();
        assert!(t.is_empty());
        assert_eq!(t.length(), 0.0);
        assert_eq!(t.duration_secs(), 0.0);
        assert!(t.sample(SimTime::ZERO).is_none());
        assert!(t.first().is_none());
        assert!(t.last().is_none());
    }

    #[test]
    fn extend_joins_trajectories() {
        let mut a = straight_line();
        let end_time = a.last().unwrap().time;
        let mut b = Trajectory::new();
        b.push(TrajectoryPoint::stationary(
            Vec3::new(10.0, 10.0, 0.0),
            end_time + SimDuration::from_secs(1.0),
        ));
        b.push(TrajectoryPoint::stationary(
            Vec3::new(10.0, 10.0, 5.0),
            end_time + SimDuration::from_secs(2.0),
        ));
        a.extend(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.length(), 25.0);
    }

    #[test]
    fn collect_from_iterator() {
        let pts = vec![
            TrajectoryPoint::stationary(Vec3::ZERO, SimTime::ZERO),
            TrajectoryPoint::stationary(Vec3::UNIT_X, SimTime::from_secs(1.0)),
        ];
        let t: Trajectory = pts.clone().into_iter().collect();
        assert_eq!(t.len(), 2);
        let collected: Vec<_> = (&t).into_iter().copied().collect();
        assert_eq!(collected, pts);
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        let _ = Trajectory::from_waypoints(&[Vec3::ZERO, Vec3::UNIT_X], 0.0, SimTime::ZERO);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", straight_line()).is_empty());
    }
}
