//! Simulation time and duration newtypes.
//!
//! MAVBench-RS runs on a *simulated* mission clock that advances by physics
//! steps and by the modelled latency of compute kernels. Keeping simulated
//! time in dedicated newtypes (rather than bare `f64` seconds) prevents the
//! classic bug of mixing wall-clock measurements with mission time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point on the simulated mission clock, in seconds since the
/// start of the mission.
///
/// # Example
///
/// ```
/// use mav_types::{SimTime, SimDuration};
/// let t = SimTime::from_secs(1.5) + SimDuration::from_secs(0.5);
/// assert_eq!(t.as_secs(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Mission start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds since mission start.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `secs` is negative or non-finite.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime {secs}");
        SimTime(secs.max(0.0))
    }

    /// Seconds since mission start.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// actually later.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs((self.0 - earlier.0).max(0.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_secs((self.0 - rhs.0).max(0.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

/// A span of simulated time, in seconds. Always non-negative.
///
/// # Example
///
/// ```
/// use mav_types::SimDuration;
/// let d = SimDuration::from_millis(250.0) * 4.0;
/// assert_eq!(d.as_secs(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// Negative or non-finite inputs are clamped to zero (a duration can never
    /// be negative on the mission clock).
    pub fn from_secs(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            SimDuration(secs)
        } else {
            SimDuration(0.0)
        }
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        SimDuration::from_secs(ms / 1000.0)
    }

    /// Duration in seconds.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Duration in milliseconds.
    pub fn as_millis(&self) -> f64 {
        self.0 * 1000.0
    }

    /// Returns `true` for a zero-length duration.
    pub fn is_zero(&self) -> bool {
        self.0 == 0.0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.1}ms", self.as_millis())
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_secs(2.0);
        let t1 = t0 + SimDuration::from_secs(3.0);
        assert_eq!(t1.as_secs(), 5.0);
        assert_eq!((t1 - t0).as_secs(), 3.0);
        // Subtraction saturates rather than producing a negative duration.
        assert_eq!((t0 - t1).as_secs(), 0.0);
        assert_eq!(t1.since(t0).as_secs(), 3.0);
    }

    #[test]
    fn duration_clamps_negative() {
        assert_eq!(SimDuration::from_secs(-1.0).as_secs(), 0.0);
        assert_eq!(SimDuration::from_secs(f64::NAN).as_secs(), 0.0);
        let d = SimDuration::from_secs(1.0) - SimDuration::from_secs(2.0);
        assert!(d.is_zero());
    }

    #[test]
    fn millis_round_trip() {
        let d = SimDuration::from_millis(182.0);
        assert!((d.as_secs() - 0.182).abs() < 1e-12);
        assert!((d.as_millis() - 182.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_and_ordering() {
        let d = SimDuration::from_secs(2.0);
        assert_eq!((d * 2.5).as_secs(), 5.0);
        assert_eq!((d / 4.0).as_secs(), 0.5);
        assert!(SimDuration::from_secs(1.0) < SimDuration::from_secs(2.0));
        assert_eq!(d.max(SimDuration::from_secs(3.0)).as_secs(), 3.0);
        assert_eq!(d.min(SimDuration::from_secs(3.0)).as_secs(), 2.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn accumulate_time() {
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_millis(100.0);
        }
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::from_millis(5.0)).is_empty());
        assert!(!format!("{}", SimDuration::from_secs(5.0)).is_empty());
    }
}
