//! Uniform-grid bucket index over 3D points.
//!
//! RRT spends almost all of its non-collision time finding the nearest tree
//! node to each sample (a linear scan makes tree growth O(n²)), PRM
//! connects its roadmap with an all-pairs O(n²) loop, frontier extraction
//! clusters candidate voxels by radius, and the multi-target tracker
//! associates detections to tracks by nearest distance. [`PointGrid`] hashes
//! points into uniform buckets so all of these become near-O(n):
//! nearest-neighbour by expanding Chebyshev rings with an exact lower-bound
//! cutoff, and radius-connection by enumerating only the buckets overlapping
//! the query ball.
//!
//! The index is *exact*, not approximate: `nearest` returns bit-for-bit the
//! node a linear `min_by` scan over `distance_squared` would return
//! (including the first-minimal-index tie-break), and `candidates_within`
//! returns a superset of every point within the radius, so callers that
//! re-test the true distance reproduce the brute-force decision exactly.
//! The planners rely on this to keep planned paths identical with the index
//! on or off.

use crate::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// A uniform bucket grid over a bounded region, indexing inserted points by
/// their position. Points outside the region are clamped into the boundary
/// buckets, which keeps every query exact (the lower-bound arguments only
/// ever weaken for clamped points).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointGrid {
    origin: Vec3,
    extent: Vec3,
    cell: f64,
    dims: [i64; 3],
    /// Flat bucket array, x-major; each bucket holds indices into `points`
    /// in insertion order.
    buckets: Vec<Vec<u32>>,
    points: Vec<Vec3>,
    /// Population at which the grid re-tunes its bucket size to the observed
    /// density (doubling schedule, so re-bucketing stays amortized O(1) per
    /// insert).
    next_retune: usize,
}

impl PointGrid {
    /// Hard ceiling on buckets per axis (so ≤ 64³ buckets total, a few MB of
    /// headers): a tiny requested cell over huge bounds must not allocate an
    /// unbounded dense array. Points past a capped edge just clamp into the
    /// boundary buckets, which every query already handles exactly.
    const MAX_DIM: i64 = 64;

    /// Creates an empty grid over `bounds` with the given bucket edge
    /// length. For nearest-neighbour workloads pick the typical query
    /// distance (the RRT extension step); for radius queries pick the
    /// radius, so candidates live in at most 3³ buckets. Cells much finer
    /// than 1/64th of the longest side are floored to it (the internal
    /// `MAX_DIM` cap); the density retune re-coarsens as the
    /// population grows, so the requested cell is only a starting hint.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite.
    pub fn new(bounds: &Aabb, cell: f64) -> Self {
        let mut grid = PointGrid {
            origin: bounds.min,
            extent: Vec3::ZERO,
            cell: 1.0,
            dims: [1, 1, 1],
            buckets: Vec::new(),
            points: Vec::new(),
            next_retune: 2 * Self::LINEAR_SCAN_CUTOFF,
        };
        grid.reset(bounds, cell);
        grid
    }

    /// Re-initialises the grid over new bounds, reusing the bucket and point
    /// allocations. The resulting state is exactly that of
    /// `PointGrid::new(bounds, cell)` — `new` is implemented on top of this —
    /// so a planner can rebuild its per-plan index without reallocating the
    /// bucket array every call.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite.
    pub fn reset(&mut self, bounds: &Aabb, cell: f64) {
        assert!(
            cell.is_finite() && cell > 0.0,
            "bucket edge length must be positive, got {cell}"
        );
        let extent = bounds.max - bounds.min;
        let longest = extent.x.max(extent.y).max(extent.z).max(1e-3);
        let cell = cell.max(longest / Self::MAX_DIM as f64);
        let dim = |e: f64| ((e / cell).ceil() as i64).clamp(1, Self::MAX_DIM);
        let dims = [dim(extent.x), dim(extent.y), dim(extent.z)];
        let total = (dims[0] * dims[1] * dims[2]) as usize;
        self.origin = bounds.min;
        self.extent = extent;
        self.cell = cell;
        self.dims = dims;
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.buckets.resize_with(total, Vec::new);
        self.points.clear();
        self.next_retune = 2 * Self::LINEAR_SCAN_CUTOFF;
    }

    /// Re-buckets the grid so the average occupied bucket holds ~8 points:
    /// coarse enough that ring walks touch few empty buckets, fine enough
    /// that each bucket scan stays short. Purely a performance retune — the
    /// stored points and every query answer are unchanged.
    fn retune(&mut self) {
        let volume =
            (self.extent.x.max(1e-3)) * (self.extent.y.max(1e-3)) * (self.extent.z.max(1e-3));
        let longest = self
            .extent
            .x
            .max(self.extent.y)
            .max(self.extent.z)
            .max(1e-3);
        let cell = (volume * 8.0 / self.points.len() as f64)
            .cbrt()
            .max(longest / Self::MAX_DIM as f64);
        if !cell.is_finite() || cell <= 0.0 {
            return;
        }
        self.cell = cell;
        let dim = |e: f64| ((e / cell).ceil() as i64).clamp(1, Self::MAX_DIM);
        self.dims = [dim(self.extent.x), dim(self.extent.y), dim(self.extent.z)];
        let total = (self.dims[0] * self.dims[1] * self.dims[2]) as usize;
        // Re-shape in place rather than replacing the array: a retune usually
        // coarsens (total shrinks), and `resize_with`'s truncation keeps the
        // spine's capacity, so a later `reset` back to a fine cell re-grows
        // within it instead of reallocating the whole header array.
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.buckets.resize_with(total, Vec::new);
        for (index, point) in self.points.iter().enumerate() {
            let coord = |p: f64, o: f64, d: i64| (((p - o) / cell).floor() as i64).clamp(0, d - 1);
            let c = [
                coord(point.x, self.origin.x, self.dims[0]),
                coord(point.y, self.origin.y, self.dims[1]),
                coord(point.z, self.origin.z, self.dims[2]),
            ];
            let slot = ((c[0] * self.dims[1] + c[1]) * self.dims[2] + c[2]) as usize;
            self.buckets[slot].push(index as u32);
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point stored under `index` (as inserted).
    pub fn point(&self, index: usize) -> Vec3 {
        self.points[index]
    }

    /// Inserts a point, returning its index (== insertion order).
    pub fn insert(&mut self, point: Vec3) -> usize {
        let index = self.points.len();
        assert!(index < u32::MAX as usize, "PointGrid capacity exceeded");
        let slot = self.flat(&self.cell_of(&point));
        self.buckets[slot].push(index as u32);
        self.points.push(point);
        if self.points.len() >= self.next_retune {
            self.retune();
            self.next_retune *= 2;
        }
        index
    }

    /// Below this population a straight linear scan beats walking the bucket
    /// rings (scattered, mostly-empty buckets cost more cache misses than a
    /// few hundred contiguous distance evaluations). Both paths return the
    /// identical index, so the cutoff is purely a performance knob.
    const LINEAR_SCAN_CUTOFF: usize = 256;

    /// Index of the point nearest to `query` under `distance_squared`, ties
    /// broken towards the smallest index — exactly the result of a linear
    /// first-minimal scan. `None` when the grid is empty.
    pub fn nearest(&self, query: &Vec3) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        if self.points.len() <= Self::LINEAR_SCAN_CUTOFF {
            let mut best = (self.points[0].distance_squared(query), 0usize);
            for (i, p) in self.points.iter().enumerate().skip(1) {
                let d2 = p.distance_squared(query);
                if d2 < best.0 {
                    best = (d2, i);
                }
            }
            return Some(best.1);
        }
        let center = self.cell_of(query);
        // Enough rings to reach every bucket from any (clamped) centre.
        let max_ring = self.dims.iter().max().copied().unwrap_or(1);
        let mut best: Option<(f64, u32)> = None;
        for ring in 0..=max_ring {
            if let Some((best_d2, _)) = best {
                // Any point in this ring or beyond lies at least
                // (ring - 1) · cell away: some axis differs by ≥ ring
                // buckets, and a point is never below its bucket's lower
                // edge minus rounding noise (clamped outliers are only ever
                // farther). The relative slack covers that rounding noise
                // (~ulp-scale, orders of magnitude below 1e-9 of the bound),
                // so the walk never stops while a later ring could still
                // produce an equal-or-better candidate — exactness of the
                // first-minimal tie-break is preserved.
                let bound = (ring - 1).max(0) as f64 * self.cell;
                if best_d2 < bound * bound * (1.0 - 1e-9) {
                    break;
                }
            }
            self.for_each_ring_bucket(&center, ring, |bucket| {
                for &i in bucket {
                    let d2 = self.points[i as usize].distance_squared(query);
                    let better = match best {
                        None => true,
                        Some((bd2, bi)) => d2 < bd2 || (d2 == bd2 && i < bi),
                    };
                    if better {
                        best = Some((d2, i));
                    }
                }
            });
        }
        best.map(|(_, i)| i as usize)
    }

    /// Appends to `out` the indices of every point that *could* lie within
    /// `radius` of `query`: all points of the buckets overlapping the query
    /// cube. A superset of the true ball — callers re-test the exact
    /// distance. Indices arrive in no particular order; sort if the caller's
    /// iteration order matters.
    pub fn candidates_within(&self, query: &Vec3, radius: f64, out: &mut Vec<u32>) {
        let r = radius.max(0.0);
        let lo = self.cell_of(&Vec3::new(query.x - r, query.y - r, query.z - r));
        let hi = self.cell_of(&Vec3::new(query.x + r, query.y + r, query.z + r));
        for x in lo[0]..=hi[0] {
            for y in lo[1]..=hi[1] {
                for z in lo[2]..=hi[2] {
                    out.extend_from_slice(&self.buckets[self.flat(&[x, y, z])]);
                }
            }
        }
    }

    /// Clamped bucket coordinates of `point`.
    fn cell_of(&self, point: &Vec3) -> [i64; 3] {
        let coord = |p: f64, o: f64, d: i64| (((p - o) / self.cell).floor() as i64).clamp(0, d - 1);
        [
            coord(point.x, self.origin.x, self.dims[0]),
            coord(point.y, self.origin.y, self.dims[1]),
            coord(point.z, self.origin.z, self.dims[2]),
        ]
    }

    fn flat(&self, cell: &[i64; 3]) -> usize {
        ((cell[0] * self.dims[1] + cell[1]) * self.dims[2] + cell[2]) as usize
    }

    /// Visits every in-range bucket at Chebyshev distance exactly `ring`
    /// from `center`: the two full x-faces, then the y- and z-faces shrunk
    /// to avoid revisiting edge and corner cells.
    fn for_each_ring_bucket(&self, center: &[i64; 3], ring: i64, mut visit: impl FnMut(&[u32])) {
        if ring == 0 {
            visit(&self.buckets[self.flat(center)]);
            return;
        }
        let clamp_range = |lo: i64, hi: i64, d: i64| (lo.max(0), hi.min(d - 1));
        let (ylo, yhi) = clamp_range(center[1] - ring, center[1] + ring, self.dims[1]);
        let (zlo, zhi) = clamp_range(center[2] - ring, center[2] + ring, self.dims[2]);
        for x in [center[0] - ring, center[0] + ring] {
            if x < 0 || x >= self.dims[0] {
                continue;
            }
            for y in ylo..=yhi {
                for z in zlo..=zhi {
                    visit(&self.buckets[self.flat(&[x, y, z])]);
                }
            }
        }
        let (xlo, xhi) = clamp_range(center[0] - ring + 1, center[0] + ring - 1, self.dims[0]);
        for y in [center[1] - ring, center[1] + ring] {
            if y < 0 || y >= self.dims[1] {
                continue;
            }
            for x in xlo..=xhi {
                for z in zlo..=zhi {
                    visit(&self.buckets[self.flat(&[x, y, z])]);
                }
            }
        }
        let (ylo, yhi) = clamp_range(center[1] - ring + 1, center[1] + ring - 1, self.dims[1]);
        for z in [center[2] - ring, center[2] + ring] {
            if z < 0 || z >= self.dims[2] {
                continue;
            }
            for x in xlo..=xhi {
                for y in ylo..=yhi {
                    visit(&self.buckets[self.flat(&[x, y, z])]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bounds() -> Aabb {
        Aabb::new(Vec3::new(-10.0, -10.0, 0.0), Vec3::new(10.0, 10.0, 5.0))
    }

    fn linear_nearest(points: &[Vec3], q: &Vec3) -> Option<usize> {
        points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.distance_squared(q).total_cmp(&b.1.distance_squared(q)))
            .map(|(i, _)| i)
    }

    #[test]
    fn empty_grid_has_no_nearest() {
        let grid = PointGrid::new(&bounds(), 2.5);
        assert!(grid.is_empty());
        assert_eq!(grid.nearest(&Vec3::ZERO), None);
    }

    #[test]
    fn nearest_matches_linear_scan_on_random_points() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut grid = PointGrid::new(&bounds(), 2.5);
        let mut points = Vec::new();
        // 700 points: crosses both the linear-scan cutoff and the first
        // density retune, so all three nearest paths are exercised.
        for i in 0..700 {
            let p = Vec3::new(
                rng.gen_range(-11.0..11.0), // a few land outside the bounds
                rng.gen_range(-11.0..11.0),
                rng.gen_range(-0.5..5.5),
            );
            assert_eq!(grid.insert(p), i);
            points.push(p);
            let q = Vec3::new(
                rng.gen_range(-12.0..12.0),
                rng.gen_range(-12.0..12.0),
                rng.gen_range(-1.0..6.0),
            );
            assert_eq!(
                grid.nearest(&q),
                linear_nearest(&points, &q),
                "query {q} after {} inserts",
                points.len()
            );
        }
        assert_eq!(grid.len(), 700);
    }

    #[test]
    fn reset_restores_the_exact_fresh_grid_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut grid = PointGrid::new(&bounds(), 2.5);
        // Push past the retune threshold so cell/dims/next_retune all drift
        // from their fresh values before the reset.
        for _ in 0..700 {
            grid.insert(Vec3::new(
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(0.0..5.0),
            ));
        }
        let other = Aabb::new(Vec3::new(-4.0, -2.0, 0.0), Vec3::new(6.0, 8.0, 3.0));
        grid.reset(&other, 1.25);
        assert_eq!(grid, PointGrid::new(&other, 1.25));
        // And behaviour after the reset matches a fresh grid exactly.
        let mut fresh = PointGrid::new(&other, 1.25);
        for _ in 0..300 {
            let p = Vec3::new(
                rng.gen_range(-5.0..7.0),
                rng.gen_range(-3.0..9.0),
                rng.gen_range(0.0..3.0),
            );
            assert_eq!(grid.insert(p), fresh.insert(p));
            let q = Vec3::new(rng.gen_range(-6.0..8.0), rng.gen_range(-4.0..10.0), 1.0);
            assert_eq!(grid.nearest(&q), fresh.nearest(&q));
        }
        assert_eq!(grid, fresh);
    }

    #[test]
    fn nearest_breaks_ties_towards_the_first_index() {
        let mut grid = PointGrid::new(&bounds(), 2.5);
        // Two points equidistant from the origin, inserted far-index-first
        // in bucket terms: the smaller index must win, as in a linear scan.
        grid.insert(Vec3::new(3.0, 0.0, 0.0));
        grid.insert(Vec3::new(-3.0, 0.0, 0.0));
        assert_eq!(grid.nearest(&Vec3::ZERO), Some(0));
    }

    #[test]
    fn candidates_cover_the_radius() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut grid = PointGrid::new(&bounds(), 6.25);
        let mut points = Vec::new();
        for _ in 0..300 {
            let p = Vec3::new(
                rng.gen_range(-11.0..11.0),
                rng.gen_range(-11.0..11.0),
                rng.gen_range(-0.5..5.5),
            );
            grid.insert(p);
            points.push(p);
        }
        let mut out = Vec::new();
        for _ in 0..50 {
            let q = Vec3::new(
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(0.0..5.0),
            );
            out.clear();
            grid.candidates_within(&q, 6.25, &mut out);
            for (i, p) in points.iter().enumerate() {
                if p.distance(&q) <= 6.25 {
                    assert!(
                        out.contains(&(i as u32)),
                        "point {i} within radius missing from candidates"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_cell_over_large_bounds_is_capped_not_fatal() {
        // A degenerate planner step (millimetres over a city-block volume)
        // must not allocate a dense (extent/cell)³ bucket array; the per-axis
        // cap clamps the grid and queries stay exact via boundary clamping.
        let big = Aabb::new(
            Vec3::new(-100.0, -100.0, 0.0),
            Vec3::new(100.0, 100.0, 100.0),
        );
        let mut grid = PointGrid::new(&big, 0.001);
        let mut points = Vec::new();
        for i in 0..40 {
            let p = Vec3::new(
                i as f64 * 4.9 - 98.0,
                (i * 7 % 39) as f64 - 19.0,
                i as f64 * 2.0,
            );
            grid.insert(p);
            points.push(p);
        }
        let q = Vec3::new(3.0, -2.0, 40.0);
        assert_eq!(grid.nearest(&q), linear_nearest(&points, &q));
    }

    #[test]
    fn stored_points_round_trip() {
        let mut grid = PointGrid::new(&bounds(), 1.0);
        let p = Vec3::new(1.5, -2.0, 3.0);
        let i = grid.insert(p);
        assert_eq!(grid.point(i), p);
    }

    #[test]
    #[should_panic]
    fn zero_cell_rejected() {
        let _ = PointGrid::new(&bounds(), 0.0);
    }
}
