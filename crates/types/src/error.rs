//! Error types shared across the MAVBench-RS workspace.

use std::error::Error as StdError;
use std::fmt;

/// Convenience alias used by fallible MAVBench-RS APIs.
pub type Result<T> = std::result::Result<T, MavError>;

/// Errors produced by MAVBench-RS components.
///
/// Crates higher in the stack (planning, applications) return this error so
/// that downstream users have a single error type to handle.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MavError {
    /// A configuration value was invalid (out of range, inconsistent, …).
    InvalidConfig {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// A motion planner could not find a collision-free path.
    PlanningFailed {
        /// Which planner failed.
        planner: String,
        /// Why it failed.
        reason: String,
    },
    /// The vehicle collided with an obstacle during the mission.
    Collision {
        /// Mission time of the collision in seconds.
        at_secs: f64,
    },
    /// The battery was exhausted before the mission completed.
    BatteryExhausted {
        /// Mission time at which the battery was depleted, in seconds.
        at_secs: f64,
    },
    /// Localization was lost and could not be recovered.
    LocalizationLost {
        /// Mission time of the failure in seconds.
        at_secs: f64,
    },
    /// The mission exceeded its configured time budget.
    MissionTimeout {
        /// The configured budget in seconds.
        budget_secs: f64,
    },
    /// A runtime node or topic was missing or mis-wired.
    Runtime {
        /// Human-readable description.
        reason: String,
    },
}

impl MavError {
    /// Shorthand constructor for [`MavError::InvalidConfig`].
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        MavError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`MavError::PlanningFailed`].
    pub fn planning_failed(planner: impl Into<String>, reason: impl Into<String>) -> Self {
        MavError::PlanningFailed {
            planner: planner.into(),
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`MavError::Runtime`].
    pub fn runtime(reason: impl Into<String>) -> Self {
        MavError::Runtime {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for MavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MavError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            MavError::PlanningFailed { planner, reason } => {
                write!(f, "{planner} planning failed: {reason}")
            }
            MavError::Collision { at_secs } => {
                write!(f, "vehicle collided with an obstacle at t={at_secs:.2}s")
            }
            MavError::BatteryExhausted { at_secs } => {
                write!(f, "battery exhausted at t={at_secs:.2}s")
            }
            MavError::LocalizationLost { at_secs } => {
                write!(f, "localization lost at t={at_secs:.2}s")
            }
            MavError::MissionTimeout { budget_secs } => {
                write!(f, "mission exceeded its {budget_secs:.0}s time budget")
            }
            MavError::Runtime { reason } => write!(f, "runtime error: {reason}"),
        }
    }
}

impl StdError for MavError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = vec![
            MavError::invalid_config("resolution must be positive"),
            MavError::planning_failed("rrt", "no path within sample budget"),
            MavError::Collision { at_secs: 12.5 },
            MavError::BatteryExhausted { at_secs: 300.0 },
            MavError::LocalizationLost { at_secs: 42.0 },
            MavError::MissionTimeout { budget_secs: 600.0 },
            MavError::runtime("topic 'octomap' has no publisher"),
        ];
        for e in errors {
            let msg = format!("{e}");
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_and_send_sync() {
        fn assert_traits<T: StdError + Send + Sync + 'static>() {}
        assert_traits::<MavError>();
    }

    #[test]
    fn constructors_capture_fields() {
        match MavError::planning_failed("prm", "graph disconnected") {
            MavError::PlanningFailed { planner, reason } => {
                assert_eq!(planner, "prm");
                assert_eq!(reason, "graph disconnected");
            }
            other => panic!("unexpected variant {other:?}"),
        }
    }
}
