//! Vehicle pose and velocity (twist) types.

use crate::vector::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Position plus heading of the vehicle in the world frame.
///
/// MAVBench models the MAV as a yaw-controlled point mass (the paper's
/// evaluation never depends on roll/pitch attitude), so a pose is a position
/// in metres plus a yaw angle in radians.
///
/// # Example
///
/// ```
/// use mav_types::{Pose, Vec3};
/// let p = Pose::new(Vec3::new(1.0, 2.0, 3.0), std::f64::consts::FRAC_PI_2);
/// let q = p.translated(Vec3::new(0.0, 0.0, 1.0));
/// assert_eq!(q.position.z, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// Position in the world frame, metres.
    pub position: Vec3,
    /// Yaw (heading) in radians, measured counter-clockwise from +X.
    pub yaw: f64,
}

impl Pose {
    /// Creates a pose from a position and yaw.
    pub const fn new(position: Vec3, yaw: f64) -> Self {
        Pose { position, yaw }
    }

    /// Creates a pose at the origin facing +X.
    pub const fn origin() -> Self {
        Pose {
            position: Vec3::ZERO,
            yaw: 0.0,
        }
    }

    /// Returns a copy translated by `delta` (yaw unchanged).
    pub fn translated(&self, delta: Vec3) -> Pose {
        Pose::new(self.position + delta, self.yaw)
    }

    /// Returns a copy with yaw pointing towards `target` (horizontal heading).
    pub fn facing(&self, target: Vec3) -> Pose {
        Pose::new(self.position, (target - self.position).heading())
    }

    /// Unit vector of the current heading in the horizontal plane.
    pub fn heading_vector(&self) -> Vec3 {
        Vec3::new(self.yaw.cos(), self.yaw.sin(), 0.0)
    }

    /// Euclidean distance between the positions of two poses.
    pub fn distance(&self, other: &Pose) -> f64 {
        self.position.distance(&other.position)
    }

    /// Smallest signed yaw difference `other.yaw - self.yaw`, wrapped to
    /// `(-π, π]`.
    pub fn yaw_error(&self, other: &Pose) -> f64 {
        wrap_angle(other.yaw - self.yaw)
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pose[{} yaw={:.3}rad]", self.position, self.yaw)
    }
}

/// Linear and angular velocity of the vehicle.
///
/// # Example
///
/// ```
/// use mav_types::{Twist, Vec3};
/// let t = Twist::linear(Vec3::new(3.0, 4.0, 0.0));
/// assert_eq!(t.speed(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Twist {
    /// Linear velocity in the world frame, metres per second.
    pub linear: Vec3,
    /// Yaw rate, radians per second.
    pub yaw_rate: f64,
}

impl Twist {
    /// A twist with zero linear and angular velocity.
    pub const ZERO: Twist = Twist {
        linear: Vec3::ZERO,
        yaw_rate: 0.0,
    };

    /// Creates a twist from linear and angular components.
    pub const fn new(linear: Vec3, yaw_rate: f64) -> Self {
        Twist { linear, yaw_rate }
    }

    /// Creates a purely linear twist.
    pub const fn linear(linear: Vec3) -> Self {
        Twist {
            linear,
            yaw_rate: 0.0,
        }
    }

    /// Magnitude of the linear velocity (speed), metres per second.
    pub fn speed(&self) -> f64 {
        self.linear.norm()
    }

    /// Magnitude of the horizontal velocity, metres per second.
    pub fn horizontal_speed(&self) -> f64 {
        self.linear.norm_xy()
    }
}

impl fmt::Display for Twist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "twist[v={} yaw_rate={:.3}]", self.linear, self.yaw_rate)
    }
}

/// Wraps an angle in radians into the interval `(-π, π]`.
///
/// # Example
///
/// ```
/// use mav_types::pose::wrap_angle;
/// let a = wrap_angle(3.0 * std::f64::consts::PI);
/// assert!((a - std::f64::consts::PI).abs() < 1e-9);
/// ```
pub fn wrap_angle(angle: f64) -> f64 {
    use std::f64::consts::PI;
    let mut a = angle % (2.0 * PI);
    if a <= -PI {
        a += 2.0 * PI;
    } else if a > PI {
        a -= 2.0 * PI;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn pose_translation_and_facing() {
        let p = Pose::origin();
        let q = p.translated(Vec3::new(1.0, 0.0, 2.0));
        assert_eq!(q.position, Vec3::new(1.0, 0.0, 2.0));
        assert_eq!(q.yaw, 0.0);

        let facing = p.facing(Vec3::new(0.0, 5.0, 0.0));
        assert!((facing.yaw - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn heading_vector_is_unit_length() {
        for yaw in [0.0, 0.3, -1.2, PI, -PI + 0.01] {
            let p = Pose::new(Vec3::ZERO, yaw);
            assert!((p.heading_vector().norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pose_distance_and_yaw_error() {
        let a = Pose::new(Vec3::ZERO, 0.1);
        let b = Pose::new(Vec3::new(0.0, 3.0, 4.0), -0.1);
        assert_eq!(a.distance(&b), 5.0);
        assert!((a.yaw_error(&b) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn yaw_error_wraps_across_pi() {
        let a = Pose::new(Vec3::ZERO, PI - 0.1);
        let b = Pose::new(Vec3::ZERO, -PI + 0.1);
        // Shortest way from (π - 0.1) to (-π + 0.1) is +0.2 radians.
        assert!((a.yaw_error(&b) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn twist_speed() {
        let t = Twist::new(Vec3::new(3.0, 0.0, 4.0), 0.5);
        assert_eq!(t.speed(), 5.0);
        assert_eq!(t.horizontal_speed(), 3.0);
        assert_eq!(Twist::ZERO.speed(), 0.0);
    }

    #[test]
    fn wrap_angle_range() {
        for k in -10..10 {
            let a = wrap_angle(0.5 + k as f64 * 2.0 * PI);
            assert!((a - 0.5).abs() < 1e-9);
        }
        assert!(wrap_angle(PI) <= PI);
        assert!(wrap_angle(-PI) > -PI);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Pose::origin()).is_empty());
        assert!(!format!("{}", Twist::ZERO).is_empty());
    }
}
