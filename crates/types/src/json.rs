//! A minimal JSON document model and the [`ToJson`] trait.
//!
//! The offline build cannot use `serde_json`, so machine-readable output
//! (`--json` on the harness binaries, sweep reports, bench baselines) goes
//! through this hand-rolled value type instead. Each crate implements
//! [`ToJson`] for its own types; rendering is deterministic (object keys keep
//! insertion order, floats use Rust's shortest-roundtrip formatting) so equal
//! values always render to identical text.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite floating-point number (non-finite floats render as `null`).
    Number(f64),
    /// An integer, kept exact (never routed through `f64`, so 64-bit values
    /// such as sweep seeds round-trip losslessly).
    Integer(i128),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds or replaces a field on an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Json {
        match &mut self {
            Json::Object(fields) => {
                let value = value.to_json();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Looks up a field on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite f64, when it is numeric (lossy above 2^53 for
    /// integers; use [`Json::as_i128`] for exact integer access).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            Json::Integer(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The value as an exact integer, when it is one.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Integer(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        format!("{self}")
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    out.push_str(&format!("{}: ", Json::String(key.clone())));
                    value.write_pretty(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Number(_) => f.write_str("null"),
            Json::Integer(x) => write!(f, "{x}"),
            Json::String(s) => escape_into(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

macro_rules! float_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }
    )*};
}
float_to_json!(f32, f64);

macro_rules! integer_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Integer(*self as i128)
            }
        }
    )*};
}
integer_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for crate::Energy {
    fn to_json(&self) -> Json {
        Json::Number(self.as_joules())
    }
}

impl ToJson for crate::SimDuration {
    fn to_json(&self) -> Json {
        Json::Number(self.as_secs())
    }
}

impl ToJson for crate::Frequency {
    fn to_json(&self) -> Json {
        Json::Number(self.as_ghz())
    }
}

impl ToJson for crate::Vec3 {
    fn to_json(&self) -> Json {
        Json::Array(vec![
            Json::Number(self.x),
            Json::Number(self.y),
            Json::Number(self.z),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Number(3.0).to_string(), "3");
        assert_eq!(Json::Number(3.5).to_string(), "3.5");
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::String("a\"b".into()).to_string(), "\"a\\\"b\"");
    }

    #[test]
    fn objects_keep_insertion_order_and_replace() {
        let obj = Json::object()
            .field("b", 1u32)
            .field("a", 2u32)
            .field("b", 3u32);
        assert_eq!(obj.to_string(), "{\"b\":3,\"a\":2}");
        assert_eq!(obj.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn integers_round_trip_exactly() {
        let big: u64 = 18_149_964_264_234_262_961; // > 2^53: would corrupt via f64
        assert_eq!(big.to_json().to_string(), "18149964264234262961");
        assert_eq!(big.to_json().as_i128(), Some(big as i128));
        assert_eq!((-3i64).to_json().to_string(), "-3");
        assert_eq!(7u32.to_json().as_f64(), Some(7.0));
    }

    #[test]
    fn arrays_and_options() {
        let arr = vec![1u32, 2, 3].to_json();
        assert_eq!(arr.to_string(), "[1,2,3]");
        let none: Option<u32> = None;
        assert_eq!(none.to_json(), Json::Null);
        assert_eq!(Some("x".to_string()).to_json().to_string(), "\"x\"");
    }

    #[test]
    fn pretty_rendering_is_valid_and_indented() {
        let doc = Json::object()
            .field("name", "sweep")
            .field("cells", vec![1u32, 2])
            .field("empty", Json::Array(vec![]));
        let pretty = doc.to_string_pretty();
        assert!(pretty.contains("\n  \"name\": \"sweep\""));
        assert!(pretty.contains("\"empty\": []"));
    }

    #[test]
    fn unit_types_render_in_natural_units() {
        assert_eq!(
            crate::Energy::from_joules(1500.0).to_json().to_string(),
            "1500"
        );
        assert_eq!(
            crate::SimDuration::from_secs(2.5).to_json().to_string(),
            "2.5"
        );
        assert_eq!(
            crate::Vec3::new(1.0, 2.0, 3.0).to_json().to_string(),
            "[1,2,3]"
        );
    }
}
