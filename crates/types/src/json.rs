//! A minimal JSON document model, parser and the [`ToJson`] trait.
//!
//! The offline build cannot use `serde_json`, so machine-readable output
//! (`--json` on the harness binaries, sweep reports, bench baselines) goes
//! through this hand-rolled value type instead. Each crate implements
//! [`ToJson`] for its own types; rendering is deterministic (object keys keep
//! insertion order, floats use Rust's shortest-roundtrip formatting) so equal
//! values always render to identical text. [`Json::parse`] is the matching
//! reader — CI pipes harness `--json` output through it (the `json_check`
//! binary) so a malformed document fails the build instead of a figure
//! script.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite floating-point number (non-finite floats render as `null`).
    Number(f64),
    /// An integer, kept exact (never routed through `f64`, so 64-bit values
    /// such as sweep seeds round-trip losslessly).
    Integer(i128),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds or replaces a field on an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Json {
        match &mut self {
            Json::Object(fields) => {
                let value = value.to_json();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Looks up a field on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite f64, when it is numeric (lossy above 2^53 for
    /// integers; use [`Json::as_i128`] for exact integer access).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            Json::Integer(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The value as an exact integer, when it is one.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Integer(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a required object field into `T`, prefixing any error with the
    /// field name so nested failures read as a path (`rates: camera_fps: …`).
    ///
    /// # Errors
    ///
    /// Fails when `self` is not an object, the field is missing, or the
    /// field's [`FromJson`] conversion fails.
    pub fn parse_field<T: FromJson>(&self, key: &str) -> Result<T, String> {
        match self.get(key) {
            Some(value) => T::from_json(value).map_err(|e| format!("{key}: {e}")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// Parses an optional object field: a missing field or an explicit `null`
    /// both yield `None`, any other value goes through `T`'s [`FromJson`].
    ///
    /// # Errors
    ///
    /// Fails when the field is present, non-null, and fails to convert.
    pub fn parse_opt_field<T: FromJson>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(value) => T::from_json(value)
                .map(Some)
                .map_err(|e| format!("{key}: {e}")),
        }
    }

    /// Parses an object field, falling back to `default` when the field is
    /// missing or `null` — the workhorse for sparse wire specs where every
    /// omitted knob keeps its configured default.
    ///
    /// # Errors
    ///
    /// Fails when the field is present, non-null, and fails to convert.
    pub fn parse_field_or<T: FromJson>(&self, key: &str, default: T) -> Result<T, String> {
        Ok(self.parse_opt_field(key)?.unwrap_or(default))
    }

    /// Rejects unknown object keys so a typoed knob in a wire spec fails
    /// loudly (HTTP 400) instead of silently running with defaults.
    ///
    /// # Errors
    ///
    /// Fails when `self` is not an object or contains a key not in `allowed`.
    pub fn check_fields(&self, allowed: &[&str]) -> Result<(), String> {
        match self {
            Json::Object(fields) => {
                for (key, _) in fields {
                    if !allowed.contains(&key.as_str()) {
                        return Err(format!("unknown field `{key}`"));
                    }
                }
                Ok(())
            }
            _ => Err("expected an object".to_string()),
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document: accepts every rendering the `Display`/pretty
    /// writers produce. Note one asymmetry in the value model rather than
    /// the text: whole-valued floats render without a decimal point
    /// (`Json::Number(8.0)` → `8`), so they parse back as [`Json::Integer`];
    /// the *text* round-trips exactly, the enum variant may not.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with a byte offset and message for the
    /// first syntax error, trailing garbage, or excessive nesting.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        format!("{self}")
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    out.push_str(&format!("{}: ", Json::String(key.clone())));
                    value.write_pretty(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

/// A JSON syntax error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum nesting depth accepted by [`Json::parse`] (keeps the recursive
/// parser clear of the stack guard on adversarial input).
const MAX_PARSE_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.error("document nested too deeply"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Json::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            // Combine a surrogate pair when one follows.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if !self.consume_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            continue; // parse_hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                // Strict JSON: control characters must be escaped; a raw one
                // means the renderer regressed — exactly what CI's
                // json_check exists to catch.
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8; find the char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let slice = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(slice);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        // Exactly four ASCII hex digits — from_str_radix alone would also
        // accept a leading `+`, which strict JSON forbids.
        if !self.bytes[self.pos..end]
            .iter()
            .all(|byte| byte.is_ascii_hexdigit())
        {
            return Err(self.error("invalid unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let value =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(value)
    }

    /// Consumes one or more ASCII digits; errors if none are present.
    fn parse_digits(&mut self) -> Result<(), JsonParseError> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("expected a digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }

    /// Parses a number under the strict JSON grammar
    /// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`): lenient forms such
    /// as `1.`, `-.5` or `007` are rejected so the CI validator flags a
    /// renderer emitting them before a stricter downstream parser does.
    fn parse_number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone zero, or a non-zero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.parse_digits()?,
            _ => return Err(self.error("expected a digit")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("leading zeros are not allowed"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.parse_digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.parse_digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(value) = text.parse::<i128>() {
                return Ok(Json::Integer(value));
            }
        }
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Number(_) => f.write_str("null"),
            Json::Integer(x) => write!(f, "{x}"),
            Json::String(s) => escape_into(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

macro_rules! float_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }
    )*};
}
float_to_json!(f32, f64);

macro_rules! integer_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Integer(*self as i128)
            }
        }
    )*};
}
integer_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for crate::Energy {
    fn to_json(&self) -> Json {
        Json::Number(self.as_joules())
    }
}

impl ToJson for crate::SimDuration {
    fn to_json(&self) -> Json {
        Json::Number(self.as_secs())
    }
}

impl ToJson for crate::Frequency {
    fn to_json(&self) -> Json {
        Json::Number(self.as_ghz())
    }
}

impl ToJson for crate::Vec3 {
    fn to_json(&self) -> Json {
        Json::Array(vec![
            Json::Number(self.x),
            Json::Number(self.y),
            Json::Number(self.z),
        ])
    }
}

impl ToJson for (f64, f64) {
    fn to_json(&self) -> Json {
        Json::Array(vec![Json::Number(self.0), Json::Number(self.1)])
    }
}

/// Types that can reconstruct themselves from a [`Json`] value — the reverse
/// of [`ToJson`], and the foundation of the wire API: every config type that
/// implements both must satisfy `from_json(&to_json(&c)) == Ok(c)`.
///
/// Errors are plain strings; callers layer field names on via
/// [`Json::parse_field`] so a deep failure reads as a path.
pub trait FromJson: Sized {
    /// Reconstructs a value from JSON.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the value has the wrong shape.
    fn from_json(json: &Json) -> Result<Self, String>;
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, String> {
        Ok(json.clone())
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, String> {
        json.as_bool()
            .ok_or_else(|| format!("expected a bool, got {json}"))
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, String> {
        json.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected a string, got {json}"))
    }
}

macro_rules! float_from_json {
    ($($t:ty),*) => {$(
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, String> {
                json.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| format!("expected a number, got {json}"))
            }
        }
    )*};
}
float_from_json!(f32, f64);

macro_rules! integer_from_json {
    ($($t:ty),*) => {$(
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, String> {
                let raw = json
                    .as_i128()
                    .ok_or_else(|| format!("expected an integer, got {json}"))?;
                <$t>::try_from(raw)
                    .map_err(|_| format!("integer {raw} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
integer_from_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, String> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, String> {
        let items = json
            .as_array()
            .ok_or_else(|| format!("expected an array, got {json}"))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| format!("[{i}]: {e}")))
            .collect()
    }
}

impl FromJson for (f64, f64) {
    fn from_json(json: &Json) -> Result<Self, String> {
        match json.as_array() {
            Some([a, b]) => Ok((f64::from_json(a)?, f64::from_json(b)?)),
            _ => Err(format!("expected a two-element array, got {json}")),
        }
    }
}

impl FromJson for crate::Energy {
    fn from_json(json: &Json) -> Result<Self, String> {
        f64::from_json(json).map(crate::Energy::from_joules)
    }
}

impl FromJson for crate::SimDuration {
    fn from_json(json: &Json) -> Result<Self, String> {
        f64::from_json(json).map(crate::SimDuration::from_secs)
    }
}

impl FromJson for crate::Frequency {
    fn from_json(json: &Json) -> Result<Self, String> {
        f64::from_json(json).map(crate::Frequency::from_ghz)
    }
}

impl FromJson for crate::Vec3 {
    fn from_json(json: &Json) -> Result<Self, String> {
        match json.as_array() {
            Some([x, y, z]) => Ok(crate::Vec3::new(
                f64::from_json(x)?,
                f64::from_json(y)?,
                f64::from_json(z)?,
            )),
            _ => Err(format!("expected a three-element array, got {json}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Number(3.0).to_string(), "3");
        assert_eq!(Json::Number(3.5).to_string(), "3.5");
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::String("a\"b".into()).to_string(), "\"a\\\"b\"");
    }

    #[test]
    fn objects_keep_insertion_order_and_replace() {
        let obj = Json::object()
            .field("b", 1u32)
            .field("a", 2u32)
            .field("b", 3u32);
        assert_eq!(obj.to_string(), "{\"b\":3,\"a\":2}");
        assert_eq!(obj.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn integers_round_trip_exactly() {
        let big: u64 = 18_149_964_264_234_262_961; // > 2^53: would corrupt via f64
        assert_eq!(big.to_json().to_string(), "18149964264234262961");
        assert_eq!(big.to_json().as_i128(), Some(big as i128));
        assert_eq!((-3i64).to_json().to_string(), "-3");
        assert_eq!(7u32.to_json().as_f64(), Some(7.0));
    }

    #[test]
    fn arrays_and_options() {
        let arr = vec![1u32, 2, 3].to_json();
        assert_eq!(arr.to_string(), "[1,2,3]");
        let none: Option<u32> = None;
        assert_eq!(none.to_json(), Json::Null);
        assert_eq!(Some("x".to_string()).to_json().to_string(), "\"x\"");
    }

    #[test]
    fn pretty_rendering_is_valid_and_indented() {
        let doc = Json::object()
            .field("name", "sweep")
            .field("cells", vec![1u32, 2])
            .field("empty", Json::Array(vec![]));
        let pretty = doc.to_string_pretty();
        assert!(pretty.contains("\n  \"name\": \"sweep\""));
        assert!(pretty.contains("\"empty\": []"));
    }

    #[test]
    fn parse_round_trips_compact_and_pretty_renderings() {
        let doc = Json::object()
            .field("figure", "fig08b")
            .field("fast", true)
            .field("seed", 18_149_964_264_234_262_961u64)
            .field("nothing", Json::Null)
            .field("velocity", 7.4532)
            .field(
                "cells",
                vec![
                    Json::object().field("cores", 4u32).field("ghz", 2.2),
                    Json::object().field("cores", 2u32).field("ghz", 0.8),
                ],
            )
            .field("empty_array", Json::Array(vec![]))
            .field("empty_object", Json::object())
            .field("escape\n\"me\"", "tab\there");
        assert_eq!(Json::parse(&doc.to_string_compact()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_accepts_standard_json_forms() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Number(-50.0));
        assert_eq!(Json::parse("42").unwrap(), Json::Integer(42));
        assert_eq!(
            Json::parse("\"\\u00e9\\u20ac\"").unwrap(),
            Json::String("é€".to_string())
        );
        // Surrogate pair (🚁, U+1F681).
        assert_eq!(
            Json::parse("\"\\ud83d\\ude81\"").unwrap(),
            Json::String("🚁".to_string())
        );
        // Raw (non-escaped) multi-byte UTF-8 passes through.
        assert_eq!(
            Json::parse("\"héli\"").unwrap(),
            Json::String("héli".to_string())
        );
        assert_eq!(
            Json::parse("[1, [2, [3]]]").unwrap(),
            Json::Array(vec![
                Json::Integer(1),
                Json::Array(vec![Json::Integer(2), Json::Array(vec![Json::Integer(3)])]),
            ])
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "truefalse",
            "\"unterminated",
            "\"bad escape \\q\"",
            "\"\\ud83d\"", // unpaired surrogate
            "1 2",
            "{\"a\":1} extra",
            "--5",
            "[1 2]",
            // Strict number grammar: lenient forms a stricter downstream
            // parser (e.g. Python json.loads) would reject must fail here.
            "1.",
            "-.5",
            ".5",
            "007",
            "01",
            "1e",
            "1e+",
            "-",
            "1.e3",
            "\"raw\ncontrol\"",
            "\"raw\tcontrol\"",
            "\"\\u+041\"",
            "\"\\u00 1\"",
        ] {
            let err = Json::parse(bad).expect_err(&format!("`{bad}` should fail"));
            assert!(!err.message.is_empty());
            assert!(!format!("{err}").is_empty());
        }
    }

    #[test]
    fn parse_depth_limit_holds() {
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // A reasonable depth still parses.
        let fine = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&fine).is_ok());
    }

    #[test]
    fn unit_types_render_in_natural_units() {
        assert_eq!(
            crate::Energy::from_joules(1500.0).to_json().to_string(),
            "1500"
        );
        assert_eq!(
            crate::SimDuration::from_secs(2.5).to_json().to_string(),
            "2.5"
        );
        assert_eq!(
            crate::Vec3::new(1.0, 2.0, 3.0).to_json().to_string(),
            "[1,2,3]"
        );
    }
}
