//! Three-dimensional vectors used for positions, velocities and accelerations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A three-dimensional vector of `f64` components.
///
/// `Vec3` is used throughout MAVBench-RS for positions (metres), velocities
/// (metres per second), accelerations (metres per second squared) and
/// generic directions. It intentionally carries no unit information; unit
/// newtypes in [`crate::units`] wrap scalars where confusion is likely.
///
/// # Example
///
/// ```
/// use mav_types::Vec3;
/// let a = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(a.norm(), 3.0);
/// assert_eq!(a.normalized().norm(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (forward / east, metres in world frame).
    pub x: f64,
    /// Y component (left / north, metres in world frame).
    pub y: f64,
    /// Z component (up, metres in world frame).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along X.
    pub const UNIT_X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along Y.
    pub const UNIT_Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along Z.
    pub const UNIT_Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector whose three components all equal `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Euclidean norm (length) of the vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean norm; cheaper than [`Vec3::norm`] when only
    /// comparisons are needed.
    #[inline]
    pub fn norm_squared(&self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Norm of the horizontal (x, y) components only. The MAV energy model
    /// (paper Eq. 1) treats horizontal and vertical motion separately.
    #[inline]
    pub fn norm_xy(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Returns the horizontal projection `(x, y, 0)`.
    #[inline]
    pub fn horizontal(&self) -> Vec3 {
        Vec3::new(self.x, self.y, 0.0)
    }

    /// Returns the vertical projection `(0, 0, z)`.
    #[inline]
    pub fn vertical(&self) -> Vec3 {
        Vec3::new(0.0, 0.0, self.z)
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(&self, other: &Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Vec3) -> f64 {
        (*self - *other).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn distance_squared(&self, other: &Vec3) -> f64 {
        (*self - *other).norm_squared()
    }

    /// Returns the unit vector pointing in the same direction.
    ///
    /// Returns [`Vec3::ZERO`] when the vector's norm is (numerically) zero, so
    /// the result is always finite.
    #[inline]
    pub fn normalized(&self) -> Vec3 {
        let n = self.norm();
        if n <= f64::EPSILON {
            Vec3::ZERO
        } else {
            *self / n
        }
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    ///
    /// `t` is not clamped; values outside `[0, 1]` extrapolate.
    #[inline]
    pub fn lerp(&self, other: &Vec3, t: f64) -> Vec3 {
        *self + (*other - *self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Clamps each component into `[lo, hi]` component-wise.
    #[inline]
    pub fn clamp(&self, lo: &Vec3, hi: &Vec3) -> Vec3 {
        self.max(lo).min(hi)
    }

    /// Clamps the vector's norm to at most `max_norm`, preserving direction.
    ///
    /// Used to enforce velocity and acceleration limits in the dynamics and
    /// control crates.
    #[inline]
    pub fn clamp_norm(&self, max_norm: f64) -> Vec3 {
        let n = self.norm();
        if n > max_norm && n > f64::EPSILON {
            *self * (max_norm / n)
        } else {
            *self
        }
    }

    /// Returns `true` if all components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Heading (yaw) of the horizontal projection, in radians, in `(-π, π]`.
    ///
    /// Returns `0.0` for a vector with no horizontal component.
    #[inline]
    pub fn heading(&self) -> f64 {
        if self.norm_xy() <= f64::EPSILON {
            0.0
        } else {
            self.y.atan2(self.x)
        }
    }

    /// Returns the component along axis index 0 (x), 1 (y) or 2 (z).
    ///
    /// # Panics
    ///
    /// Panics if `axis > 2`.
    #[inline]
    pub fn axis(&self, axis: usize) -> f64 {
        self[axis]
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 axis index out of range: {index}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(v: [f64; 3]) -> Self {
        Vec3::new(v[0], v[1], v[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.5, 4.0, -1.0);
        assert_eq!(a + Vec3::ZERO, a);
        assert_eq!(a - a, Vec3::ZERO);
        assert_eq!(a + b, b + a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn norms_and_distance() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_squared(), 25.0);
        assert_eq!(a.norm_xy(), 5.0);
        assert_eq!(Vec3::new(3.0, 4.0, 12.0).norm(), 13.0);
        assert_eq!(a.distance(&Vec3::ZERO), 5.0);
        assert_eq!(a.distance_squared(&Vec3::ZERO), 25.0);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::UNIT_X;
        let y = Vec3::UNIT_Y;
        assert_eq!(x.dot(&y), 0.0);
        assert_eq!(x.cross(&y), Vec3::UNIT_Z);
        assert_eq!(y.cross(&x), -Vec3::UNIT_Z);
        let a = Vec3::new(1.0, 2.0, 3.0);
        assert!((a.cross(&a)).norm() < 1e-12);
    }

    #[test]
    fn normalization_handles_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let v = Vec3::new(0.0, 0.0, 7.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(10.0, -4.0, 2.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Vec3::new(5.0, -2.0, 1.0));
    }

    #[test]
    fn clamp_norm_preserves_direction() {
        let v = Vec3::new(6.0, 8.0, 0.0);
        let c = v.clamp_norm(5.0);
        assert!((c.norm() - 5.0).abs() < 1e-12);
        assert!((c.normalized() - v.normalized()).norm() < 1e-12);
        // Below the limit the vector is untouched.
        assert_eq!(v.clamp_norm(100.0), v);
    }

    #[test]
    fn heading_matches_atan2() {
        assert_eq!(Vec3::UNIT_X.heading(), 0.0);
        assert!((Vec3::UNIT_Y.heading() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(Vec3::UNIT_Z.heading(), 0.0);
    }

    #[test]
    fn component_minmax_and_clamp() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, 4.0, -4.0);
        assert_eq!(a.min(&b), Vec3::new(1.0, 4.0, -4.0));
        assert_eq!(a.max(&b), Vec3::new(2.0, 5.0, -3.0));
        let lo = Vec3::splat(-1.0);
        let hi = Vec3::splat(1.0);
        assert_eq!(a.clamp(&lo, &hi), Vec3::new(1.0, 1.0, -1.0));
    }

    #[test]
    fn indexing_and_conversions() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 2.0);
        assert_eq!(a[2], 3.0);
        let arr: [f64; 3] = a.into();
        assert_eq!(Vec3::from(arr), a);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
        assert!(!format!("{:?}", Vec3::ZERO).is_empty());
    }
}
