//! Axis-aligned bounding boxes.
//!
//! AABBs are the geometric primitive of the MAVBench-RS environment substrate:
//! obstacles, world bounds, map regions and sensor frusta are all expressed as
//! axis-aligned boxes, which keeps collision queries and ray casting exact and
//! fast.

use crate::vector::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned box described by its minimum and maximum corners.
///
/// # Example
///
/// ```
/// use mav_types::{Aabb, Vec3};
/// let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0));
/// assert!(b.contains(&Vec3::new(1.0, 1.0, 1.0)));
/// assert_eq!(b.volume(), 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner (inclusive).
    pub min: Vec3,
    /// Maximum corner (inclusive).
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from two opposite corners, normalising the ordering so
    /// that `min <= max` holds component-wise regardless of argument order.
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// Creates a box centred at `center` with full extents `size`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any component of `size` is negative.
    pub fn from_center_size(center: Vec3, size: Vec3) -> Self {
        debug_assert!(size.x >= 0.0 && size.y >= 0.0 && size.z >= 0.0);
        let half = size * 0.5;
        Aabb {
            min: center - half,
            max: center + half,
        }
    }

    /// The centre point of the box.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Full extents (size along each axis).
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Half extents.
    pub fn half_size(&self) -> Vec3 {
        self.size() * 0.5
    }

    /// Volume of the box in cubic metres.
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// Returns `true` if the point lies inside or on the boundary.
    pub fn contains(&self, p: &Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns `true` if the two boxes overlap (sharing a face counts).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Returns a copy grown by `margin` on every side.
    ///
    /// Growing by a negative margin shrinks the box; the result is clamped so
    /// `min <= max` still holds (a fully collapsed box degenerates to its
    /// centre point).
    pub fn inflated(&self, margin: f64) -> Aabb {
        let m = Vec3::splat(margin);
        let min = self.min - m;
        let max = self.max + m;
        if min.x > max.x || min.y > max.y || min.z > max.z {
            let c = self.center();
            Aabb { min: c, max: c }
        } else {
            Aabb { min, max }
        }
    }

    /// Smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// The point inside the box closest to `p`.
    pub fn closest_point(&self, p: &Vec3) -> Vec3 {
        p.clamp(&self.min, &self.max)
    }

    /// Euclidean distance from `p` to the box surface (zero if inside).
    pub fn distance_to_point(&self, p: &Vec3) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Intersects the ray `origin + t * dir` (with `dir` not necessarily
    /// normalised) against the box using the slab method.
    ///
    /// Returns the entry parameter `t >= 0` of the first intersection, or
    /// `None` if the ray misses the box entirely. If the origin is inside the
    /// box the returned `t` is `0.0`.
    pub fn ray_intersection(&self, origin: &Vec3, dir: &Vec3) -> Option<f64> {
        let mut t_min = 0.0_f64;
        let mut t_max = f64::INFINITY;
        for axis in 0..3 {
            let o = origin[axis];
            let d = dir[axis];
            let lo = self.min[axis];
            let hi = self.max[axis];
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let mut t0 = (lo - o) * inv;
                let mut t1 = (hi - o) * inv;
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max {
                    return None;
                }
            }
        }
        Some(t_min)
    }

    /// Returns `true` when the segment from `a` to `b` intersects the box.
    pub fn intersects_segment(&self, a: &Vec3, b: &Vec3) -> bool {
        let dir = *b - *a;
        let len = dir.norm();
        if len <= f64::EPSILON {
            return self.contains(a);
        }
        match self.ray_intersection(a, &dir) {
            Some(t) => t <= 1.0,
            None => false,
        }
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aabb[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn corner_normalisation() {
        let b = Aabb::new(Vec3::new(2.0, -1.0, 5.0), Vec3::new(-2.0, 1.0, 0.0));
        assert_eq!(b.min, Vec3::new(-2.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(2.0, 1.0, 5.0));
    }

    #[test]
    fn center_size_volume() {
        let b = Aabb::from_center_size(Vec3::new(1.0, 1.0, 1.0), Vec3::splat(2.0));
        assert_eq!(b.center(), Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(b.size(), Vec3::splat(2.0));
        assert_eq!(b.half_size(), Vec3::splat(1.0));
        assert_eq!(b.volume(), 8.0);
    }

    #[test]
    fn containment_boundaries() {
        let b = unit_box();
        assert!(b.contains(&Vec3::ZERO));
        assert!(b.contains(&Vec3::splat(1.0)));
        assert!(b.contains(&Vec3::splat(0.5)));
        assert!(!b.contains(&Vec3::new(1.1, 0.5, 0.5)));
        assert!(!b.contains(&Vec3::new(0.5, -0.1, 0.5)));
    }

    #[test]
    fn intersection_cases() {
        let a = unit_box();
        let apart = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let touching = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        let overlapping = Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5));
        assert!(!a.intersects(&apart));
        assert!(a.intersects(&touching));
        assert!(a.intersects(&overlapping));
        assert!(overlapping.intersects(&a));
    }

    #[test]
    fn inflation_and_union() {
        let a = unit_box();
        let inflated = a.inflated(0.5);
        assert_eq!(inflated.min, Vec3::splat(-0.5));
        assert_eq!(inflated.max, Vec3::splat(1.5));
        // Large negative margin collapses to the centre.
        let collapsed = a.inflated(-10.0);
        assert_eq!(collapsed.min, collapsed.max);
        assert_eq!(collapsed.min, a.center());

        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert_eq!(u.min, Vec3::ZERO);
        assert_eq!(u.max, Vec3::splat(3.0));
    }

    #[test]
    fn closest_point_and_distance() {
        let b = unit_box();
        assert_eq!(b.closest_point(&Vec3::splat(0.5)), Vec3::splat(0.5));
        assert_eq!(
            b.closest_point(&Vec3::new(2.0, 0.5, 0.5)),
            Vec3::new(1.0, 0.5, 0.5)
        );
        assert_eq!(b.distance_to_point(&Vec3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.distance_to_point(&Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn ray_hits_and_misses() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, -1.0), Vec3::new(3.0, 1.0, 1.0));
        // Ray along +X from the origin hits the box at t = 1 (dir has length 1).
        let t = b.ray_intersection(&Vec3::ZERO, &Vec3::UNIT_X).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        // Ray pointing away misses.
        assert!(b.ray_intersection(&Vec3::ZERO, &(-Vec3::UNIT_X)).is_none());
        // Ray parallel to the box but offset misses.
        assert!(b
            .ray_intersection(&Vec3::new(0.0, 5.0, 0.0), &Vec3::UNIT_X)
            .is_none());
        // Origin inside the box yields t = 0.
        let t = b
            .ray_intersection(&Vec3::new(2.0, 0.0, 0.0), &Vec3::UNIT_X)
            .unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn segment_intersection() {
        let b = unit_box();
        assert!(b.intersects_segment(&Vec3::new(-1.0, 0.5, 0.5), &Vec3::new(2.0, 0.5, 0.5)));
        assert!(!b.intersects_segment(&Vec3::new(-1.0, 0.5, 0.5), &Vec3::new(-0.1, 0.5, 0.5)));
        // Degenerate segment (a point) inside the box.
        assert!(b.intersects_segment(&Vec3::splat(0.5), &Vec3::splat(0.5)));
        // Degenerate segment outside.
        assert!(!b.intersects_segment(&Vec3::splat(2.0), &Vec3::splat(2.0)));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", unit_box()).is_empty());
    }
}
