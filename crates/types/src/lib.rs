//! Core geometry, pose, trajectory and unit types shared by every MAVBench-RS crate.
//!
//! This crate is the bottom of the dependency graph: it defines the vocabulary
//! used by the environment, sensor, dynamics, energy, compute, perception,
//! planning, control and application crates. Everything here is plain data —
//! no simulation logic lives in this crate.
//!
//! # Example
//!
//! ```
//! use mav_types::{Vec3, Pose, Trajectory, TrajectoryPoint, SimTime};
//!
//! let start = Pose::new(Vec3::new(0.0, 0.0, 1.0), 0.0);
//! let goal = Vec3::new(10.0, 5.0, 1.0);
//! let mut traj = Trajectory::new();
//! traj.push(TrajectoryPoint::stationary(start.position, SimTime::ZERO));
//! traj.push(TrajectoryPoint::stationary(goal, SimTime::from_secs(4.0)));
//! assert_eq!(traj.len(), 2);
//! assert!(traj.length() > 11.0);
//! ```

#![warn(missing_docs)]

pub mod aabb;
pub mod error;
pub mod grid;
pub mod hash;
pub mod json;
pub mod pose;
pub mod spatial;
pub mod time;
pub mod trajectory;
pub mod units;
pub mod vector;

pub use aabb::Aabb;
pub use error::{MavError, Result};
pub use grid::{GridIndex, GridSpec};
pub use hash::sha256_hex;
pub use json::{FromJson, Json, ToJson};
pub use pose::{Pose, Twist};
pub use spatial::PointGrid;
pub use time::{SimDuration, SimTime};
pub use trajectory::{Trajectory, TrajectoryPoint};
pub use units::{Energy, Frequency, Power};
pub use vector::Vec3;
