//! Discrete grid indexing shared by the occupancy map and the planners.

use crate::aabb::Aabb;
use crate::vector::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Integer index of a voxel / grid cell along the three axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridIndex {
    /// Cell index along X.
    pub x: i64,
    /// Cell index along Y.
    pub y: i64,
    /// Cell index along Z.
    pub z: i64,
}

impl GridIndex {
    /// Creates a grid index from its components.
    pub const fn new(x: i64, y: i64, z: i64) -> Self {
        GridIndex { x, y, z }
    }

    /// Manhattan distance between two indices.
    pub fn manhattan_distance(&self, other: &GridIndex) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs() + (self.z - other.z).abs()
    }

    /// The 6 face-adjacent neighbours.
    pub fn neighbors6(&self) -> [GridIndex; 6] {
        [
            GridIndex::new(self.x + 1, self.y, self.z),
            GridIndex::new(self.x - 1, self.y, self.z),
            GridIndex::new(self.x, self.y + 1, self.z),
            GridIndex::new(self.x, self.y - 1, self.z),
            GridIndex::new(self.x, self.y, self.z + 1),
            GridIndex::new(self.x, self.y, self.z - 1),
        ]
    }

    /// The 26 neighbours sharing a face, edge or corner.
    pub fn neighbors26(&self) -> Vec<GridIndex> {
        let mut out = Vec::with_capacity(26);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    out.push(GridIndex::new(self.x + dx, self.y + dy, self.z + dz));
                }
            }
        }
        out
    }
}

impl fmt::Display for GridIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}]", self.x, self.y, self.z)
    }
}

/// Mapping between continuous world coordinates and discrete grid indices with
/// a fixed cell edge length (resolution).
///
/// # Example
///
/// ```
/// use mav_types::{GridSpec, Vec3};
/// let spec = GridSpec::new(0.5);
/// let idx = spec.index_of(&Vec3::new(1.2, -0.3, 0.0));
/// let center = spec.center_of(&idx);
/// assert!(center.distance(&Vec3::new(1.25, -0.25, 0.25)) < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    resolution: f64,
}

impl GridSpec {
    /// Creates a grid with the given cell edge length in metres.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not strictly positive and finite.
    pub fn new(resolution: f64) -> Self {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "grid resolution must be positive, got {resolution}"
        );
        GridSpec { resolution }
    }

    /// The cell edge length in metres.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Index of the cell containing `point`.
    pub fn index_of(&self, point: &Vec3) -> GridIndex {
        GridIndex::new(
            (point.x / self.resolution).floor() as i64,
            (point.y / self.resolution).floor() as i64,
            (point.z / self.resolution).floor() as i64,
        )
    }

    /// World-frame centre of the given cell.
    pub fn center_of(&self, idx: &GridIndex) -> Vec3 {
        Vec3::new(
            (idx.x as f64 + 0.5) * self.resolution,
            (idx.y as f64 + 0.5) * self.resolution,
            (idx.z as f64 + 0.5) * self.resolution,
        )
    }

    /// Axis-aligned bounds of the given cell.
    pub fn cell_bounds(&self, idx: &GridIndex) -> Aabb {
        let min = Vec3::new(
            idx.x as f64 * self.resolution,
            idx.y as f64 * self.resolution,
            idx.z as f64 * self.resolution,
        );
        Aabb::new(min, min + Vec3::splat(self.resolution))
    }

    /// Enumerates the cells traversed by the segment from `a` to `b` using a
    /// 3D digital differential analyser (Amanatides–Woo traversal).
    ///
    /// The result always starts with the cell containing `a` and ends with the
    /// cell containing `b`.
    pub fn traverse(&self, a: &Vec3, b: &Vec3) -> Vec<GridIndex> {
        let mut cells = Vec::new();
        self.traverse_into(a, b, &mut cells);
        cells
    }

    /// [`GridSpec::traverse`] writing into a caller-owned buffer: `cells` is
    /// cleared and refilled with exactly the sequence `traverse` returns, so
    /// per-ray callers (map insertion, segment checks) can reuse one
    /// allocation across an entire scan.
    pub fn traverse_into(&self, a: &Vec3, b: &Vec3, cells: &mut Vec<GridIndex>) {
        cells.clear();
        let start = self.index_of(a);
        let end = self.index_of(b);
        cells.push(start);
        if start == end {
            return;
        }
        let dir = *b - *a;
        let len = dir.norm();
        if len <= f64::EPSILON {
            return;
        }
        let step = [
            if dir.x > 0.0 { 1i64 } else { -1 },
            if dir.y > 0.0 { 1i64 } else { -1 },
            if dir.z > 0.0 { 1i64 } else { -1 },
        ];
        let mut current = start;
        // Parametric distance (in t along the segment) to the next cell
        // boundary on each axis, plus the per-cell increment.
        let mut t_max = [0.0f64; 3];
        let mut t_delta = [0.0f64; 3];
        for axis in 0..3 {
            let d = dir[axis];
            let origin = a[axis];
            if d.abs() < 1e-12 {
                t_max[axis] = f64::INFINITY;
                t_delta[axis] = f64::INFINITY;
            } else {
                let cell = match axis {
                    0 => current.x,
                    1 => current.y,
                    _ => current.z,
                } as f64;
                let boundary = if d > 0.0 {
                    (cell + 1.0) * self.resolution
                } else {
                    cell * self.resolution
                };
                t_max[axis] = (boundary - origin) / d;
                t_delta[axis] = self.resolution / d.abs();
            }
        }
        // Bounded loop: the traversal can visit at most the Manhattan distance
        // between the two cells plus one cell per axis.
        let max_steps = (start.manhattan_distance(&end) + 3) as usize;
        for _ in 0..max_steps {
            if current == end {
                break;
            }
            let axis = if t_max[0] <= t_max[1] && t_max[0] <= t_max[2] {
                0
            } else if t_max[1] <= t_max[2] {
                1
            } else {
                2
            };
            match axis {
                0 => current.x += step[0],
                1 => current.y += step[1],
                _ => current.z += step[2],
            }
            t_max[axis] += t_delta[axis];
            cells.push(current);
        }
        if *cells.last().expect("non-empty") != end {
            cells.push(end);
        }
    }
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let spec = GridSpec::new(0.25);
        for p in [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.3, -2.7, 0.9),
            Vec3::new(-0.01, 0.01, 5.0),
        ] {
            let idx = spec.index_of(&p);
            let c = spec.center_of(&idx);
            // Centre of the containing cell is within half a diagonal.
            assert!(c.distance(&p) <= 0.25 * 3f64.sqrt() / 2.0 + 1e-9);
            assert_eq!(spec.index_of(&c), idx);
        }
    }

    #[test]
    fn cell_bounds_contain_center() {
        let spec = GridSpec::new(0.8);
        let idx = GridIndex::new(-3, 2, 7);
        let bounds = spec.cell_bounds(&idx);
        assert!(bounds.contains(&spec.center_of(&idx)));
        assert!((bounds.volume() - 0.8f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn neighbors_counts() {
        let idx = GridIndex::new(0, 0, 0);
        assert_eq!(idx.neighbors6().len(), 6);
        assert_eq!(idx.neighbors26().len(), 26);
        for n in idx.neighbors6() {
            assert_eq!(idx.manhattan_distance(&n), 1);
        }
    }

    #[test]
    fn traversal_straight_line() {
        let spec = GridSpec::new(1.0);
        let cells = spec.traverse(&Vec3::new(0.5, 0.5, 0.5), &Vec3::new(4.5, 0.5, 0.5));
        assert_eq!(cells.len(), 5);
        assert_eq!(cells[0], GridIndex::new(0, 0, 0));
        assert_eq!(*cells.last().unwrap(), GridIndex::new(4, 0, 0));
    }

    #[test]
    fn traversal_diagonal_connects_endpoints() {
        let spec = GridSpec::new(0.5);
        let a = Vec3::new(0.1, 0.1, 0.1);
        let b = Vec3::new(3.4, 2.2, 1.7);
        let cells = spec.traverse(&a, &b);
        assert_eq!(cells[0], spec.index_of(&a));
        assert_eq!(*cells.last().unwrap(), spec.index_of(&b));
        // Each consecutive pair of cells differs by at most 1 along each axis.
        for w in cells.windows(2) {
            assert!(w[0].manhattan_distance(&w[1]) >= 1);
            assert!((w[0].x - w[1].x).abs() <= 1);
            assert!((w[0].y - w[1].y).abs() <= 1);
            assert!((w[0].z - w[1].z).abs() <= 1);
        }
    }

    #[test]
    fn traversal_degenerate_segment() {
        let spec = GridSpec::new(1.0);
        let p = Vec3::new(0.5, 0.5, 0.5);
        let cells = spec.traverse(&p, &p);
        assert_eq!(cells, vec![GridIndex::new(0, 0, 0)]);
    }

    #[test]
    #[should_panic]
    fn zero_resolution_rejected() {
        let _ = GridSpec::new(0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", GridIndex::new(1, 2, 3)).is_empty());
    }
}
