//! Point-cloud generation from depth images.
//!
//! This is the first kernel of the perception stage in the Package Delivery,
//! 3D Mapping and Search and Rescue dataflows (Fig. 7): every depth frame is
//! converted into a world-frame point cloud that feeds the OctoMap update.

use mav_sensors::DepthImage;
use mav_types::{Aabb, Vec3};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A world-frame point cloud together with the sensor origin it was captured
/// from (needed for free-space carving in the occupancy map).
///
/// Stored structure-of-arrays: one coordinate vector per axis. The OctoMap
/// scan-insertion hot loop streams whole clouds point by point, and the
/// parallel insertion path hands contiguous ray ranges to workers — both
/// touch memory sequentially per axis instead of striding over
/// 3-tuples, and per-axis slices are available for vectorised passes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointCloud {
    /// Sensor origin in the world frame.
    pub origin: Vec3,
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
}

impl PointCloud {
    /// Creates a point cloud from an origin and points.
    pub fn new(origin: Vec3, points: Vec<Vec3>) -> Self {
        let mut cloud = PointCloud {
            origin,
            xs: Vec::with_capacity(points.len()),
            ys: Vec::with_capacity(points.len()),
            zs: Vec::with_capacity(points.len()),
        };
        for p in points {
            cloud.push(p);
        }
        cloud
    }

    /// Generates a point cloud from a depth image (the point-cloud-generation
    /// kernel).
    ///
    /// Pixels with no return are skipped. Points are expressed in the world
    /// frame using the camera pose stored in the image.
    pub fn from_depth_image(image: &DepthImage) -> Self {
        let mut cloud = PointCloud::default();
        cloud.fill_from_depth_image(image);
        cloud
    }

    /// Refills this cloud from a depth image, reusing the coordinate buffers.
    /// Produces exactly the points of [`PointCloud::from_depth_image`] (same
    /// pixel order), which is implemented on top of this — the per-frame
    /// episode hot path calls this on a scratch cloud instead of allocating
    /// three fresh coordinate vectors per capture.
    pub fn fill_from_depth_image(&mut self, image: &DepthImage) {
        self.clear();
        self.origin = image.camera_pose.position;
        for v in 0..image.height {
            for u in 0..image.width {
                if let Some(p) = image.point_at(u, v) {
                    self.push(p);
                }
            }
        }
    }

    /// Removes every point while keeping the coordinate buffers' capacity.
    /// The origin is unchanged.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.zs.clear();
    }

    /// Appends a point.
    pub fn push(&mut self, p: Vec3) {
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.zs.push(p.z);
    }

    /// The `index`-th point.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn point(&self, index: usize) -> Vec3 {
        Vec3::new(self.xs[index], self.ys[index], self.zs[index])
    }

    /// Iterates the points in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Vec3> + '_ {
        self.xs
            .iter()
            .zip(&self.ys)
            .zip(&self.zs)
            .map(|((&x, &y), &z)| Vec3::new(x, y, z))
    }

    /// The x coordinates of all points, in insertion order.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y coordinates of all points, in insertion order.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The z coordinates of all points, in insertion order.
    pub fn zs(&self) -> &[f64] {
        &self.zs
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` when the cloud has no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Axis-aligned bounds of the cloud, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        if self.is_empty() {
            return None;
        }
        let first = self.point(0);
        let mut bounds = Aabb::new(first, first);
        for p in self.iter() {
            bounds = bounds.union(&Aabb::new(p, p));
        }
        Some(bounds)
    }

    /// Voxel-grid downsampling: keeps at most one point per cube of edge
    /// `voxel_size`, replacing the cube's points by their centroid.
    ///
    /// # Panics
    ///
    /// Panics if `voxel_size` is not strictly positive.
    pub fn downsample(&self, voxel_size: f64) -> PointCloud {
        let mut scratch = DownsampleScratch::default();
        let mut out = PointCloud::default();
        self.downsample_into(voxel_size, &mut scratch, &mut out);
        out
    }

    /// [`PointCloud::downsample`] into a reusable cell map and output cloud:
    /// the same centroid accumulation and determinism sort, with zero
    /// allocations once the scratch buffers are warm. `downsample` is
    /// implemented on top of this, so the two cannot diverge.
    ///
    /// # Panics
    ///
    /// Panics if `voxel_size` is not strictly positive.
    pub fn downsample_into(
        &self,
        voxel_size: f64,
        scratch: &mut DownsampleScratch,
        out: &mut PointCloud,
    ) {
        assert!(voxel_size > 0.0, "voxel size must be positive");
        scratch.cells.clear();
        for p in self.iter() {
            let key = (
                (p.x / voxel_size).floor() as i64,
                (p.y / voxel_size).floor() as i64,
                (p.z / voxel_size).floor() as i64,
            );
            let entry = scratch.cells.entry(key).or_insert((Vec3::ZERO, 0));
            entry.0 += p;
            entry.1 += 1;
        }
        scratch.centroids.clear();
        scratch
            .centroids
            .extend(scratch.cells.values().map(|&(sum, n)| sum / n as f64));
        // Sort for determinism across hash orders. The chained `total_cmp`
        // orders identically to the historical `partial_cmp` tuple sort:
        // centroids are finite (means of capture points), and the sole case
        // where the comparators disagree — an axis tie between -0.0 and
        // +0.0 — cannot arise, since a -0.0 mean would need every point in
        // the cell to carry an exact -0.0 coordinate, which capture
        // geometry (origin + direction·range with range > 0) never emits.
        scratch.centroids.sort_by(|a, b| {
            a.x.total_cmp(&b.x)
                .then(a.y.total_cmp(&b.y))
                .then(a.z.total_cmp(&b.z))
        });
        out.clear();
        out.origin = self.origin;
        for &p in &scratch.centroids {
            out.push(p);
        }
    }

    /// The point nearest to `query`, or `None` when empty.
    pub fn nearest(&self, query: &Vec3) -> Option<Vec3> {
        // `total_cmp` ≡ the historical `partial_cmp().expect()`: squared
        // distances are finite non-negative, so the NaN/±0.0 cases where
        // the comparators differ never occur.
        self.iter().min_by(|a, b| {
            a.distance_squared(query)
                .total_cmp(&b.distance_squared(query))
        })
    }

    /// Minimum distance from the sensor origin to any point, or `None` when
    /// empty. Used as a cheap proximity alarm by the collision-check node.
    pub fn min_range(&self) -> Option<f64> {
        // Same argument as `nearest`: finite non-negative distances.
        self.iter()
            .map(|p| p.distance(&self.origin))
            .min_by(|a, b| a.total_cmp(b))
    }
}

impl Default for PointCloud {
    /// An empty cloud at the origin.
    fn default() -> Self {
        PointCloud {
            origin: Vec3::ZERO,
            xs: Vec::new(),
            ys: Vec::new(),
            zs: Vec::new(),
        }
    }
}

/// Reusable buffers for [`PointCloud::downsample_into`]: the voxel-cell
/// accumulator map and the sorted-centroid staging vector. One instance per
/// worker amortises the downsampling kernel's allocations across every frame
/// of every episode it runs.
#[derive(Debug, Default)]
pub struct DownsampleScratch {
    cells: HashMap<(i64, i64, i64), (Vec3, usize)>,
    centroids: Vec<Vec3>,
}

impl fmt::Display for PointCloud {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pointcloud[{} points from {}]", self.len(), self.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_env::{EnvironmentConfig, ObstacleClass, World};
    use mav_sensors::{DepthCamera, DepthCameraConfig};
    use mav_types::Pose;

    fn wall_world() -> World {
        let mut w = World::empty(Aabb::new(
            Vec3::new(-50.0, -50.0, 0.0),
            Vec3::new(50.0, 50.0, 30.0),
        ));
        w.add_box(
            Aabb::from_center_size(Vec3::new(10.0, 0.0, 5.0), Vec3::new(1.0, 60.0, 10.0)),
            ObstacleClass::Structure,
        );
        w
    }

    #[test]
    fn cloud_from_depth_image_sits_on_obstacles() {
        let world = wall_world();
        let frame =
            DepthCamera::default().capture(&world, &Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0));
        let cloud = PointCloud::from_depth_image(&frame);
        assert!(!cloud.is_empty());
        assert_eq!(cloud.origin, Vec3::new(0.0, 0.0, 2.0));
        // Every point is on the wall face (x ≈ 9.5) or the world boundary —
        // never behind the sensor.
        for p in cloud.iter() {
            assert!(p.x > 0.0);
        }
        // The closest return is the floor (world boundary) a couple of metres
        // below the tilted lower rays of the frame.
        assert!(cloud.min_range().unwrap() > 1.5);
    }

    #[test]
    fn soa_storage_round_trips_points() {
        let points = vec![
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-4.0, 5.5, 0.25),
            Vec3::new(0.0, -1.0, 9.0),
        ];
        let cloud = PointCloud::new(Vec3::ZERO, points.clone());
        assert_eq!(cloud.iter().collect::<Vec<_>>(), points);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(cloud.point(i), *p);
            assert_eq!(cloud.xs()[i], p.x);
            assert_eq!(cloud.ys()[i], p.y);
            assert_eq!(cloud.zs()[i], p.z);
        }
    }

    #[test]
    fn downsampling_reduces_density_and_preserves_extent() {
        let world = EnvironmentConfig::urban_outdoor().with_seed(3).generate();
        let frame = DepthCamera::new(DepthCameraConfig::high_resolution())
            .capture(&world, &Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0));
        let cloud = PointCloud::from_depth_image(&frame);
        let coarse = cloud.downsample(1.0);
        assert!(coarse.len() < cloud.len());
        assert!(!coarse.is_empty());
        let b0 = cloud.bounds().unwrap();
        let b1 = coarse.bounds().unwrap();
        // The coarse cloud cannot extend beyond the fine cloud by more than a
        // voxel in any direction.
        assert!(b1.min.x >= b0.min.x - 1.0 && b1.max.x <= b0.max.x + 1.0);
    }

    #[test]
    fn empty_cloud_behaviour() {
        let c = PointCloud::new(Vec3::ZERO, vec![]);
        assert!(c.is_empty());
        assert!(c.bounds().is_none());
        assert!(c.nearest(&Vec3::ZERO).is_none());
        assert!(c.min_range().is_none());
        assert_eq!(c.downsample(0.5).len(), 0);
    }

    #[test]
    fn nearest_point_query() {
        let c = PointCloud::new(
            Vec3::ZERO,
            vec![
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(5.0, 0.0, 0.0),
                Vec3::new(-2.0, 0.0, 0.0),
            ],
        );
        assert_eq!(
            c.nearest(&Vec3::new(4.0, 0.0, 0.0)),
            Some(Vec3::new(5.0, 0.0, 0.0))
        );
        assert_eq!(c.min_range(), Some(1.0));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reused_buffers_reproduce_the_allocating_paths_exactly() {
        let world = EnvironmentConfig::urban_outdoor().with_seed(3).generate();
        let camera = DepthCamera::new(DepthCameraConfig::default());
        let mut scratch = DownsampleScratch::default();
        let mut raw = PointCloud::default();
        let mut coarse = PointCloud::default();
        // Dirty the buffers with one frame, then reuse them on another: the
        // reused results must equal the allocating ones field for field.
        for (position, yaw) in [
            (Vec3::new(0.0, 0.0, 2.0), 0.0),
            (Vec3::new(5.0, -3.0, 2.5), 1.2),
        ] {
            let frame = camera.capture(&world, &Pose::new(position, yaw));
            raw.fill_from_depth_image(&frame);
            assert_eq!(raw, PointCloud::from_depth_image(&frame));
            raw.downsample_into(0.5, &mut scratch, &mut coarse);
            assert_eq!(coarse, raw.downsample(0.5));
        }
    }

    #[test]
    #[should_panic]
    fn zero_voxel_size_rejected() {
        let _ = PointCloud::new(Vec3::ZERO, vec![Vec3::ZERO]).downsample(0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", PointCloud::new(Vec3::ZERO, vec![])).is_empty());
    }
}
