//! A probabilistic occupancy octree (the OctoMap kernel).
//!
//! The paper treats OctoMap generation as the dominant perception kernel of
//! Package Delivery, 3D Mapping and Search and Rescue, and builds an entire
//! case study around its resolution knob (Figs. 17–19): finer voxels cost
//! more compute per update but let the drone see narrow openings; coarser
//! voxels are cheap but inflate obstacles until doorways disappear.
//!
//! This implementation is a real octree over a cubic domain. Leaves carry
//! clamped log-odds occupancy; rays carve free space along their length and
//! mark their endpoint occupied, exactly like the original OctoMap update
//! rule.

use crate::pointcloud::PointCloud;
use mav_types::{Aabb, GridIndex, GridSpec, Vec3};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Occupancy state of a queried location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Occupancy {
    /// Probability of occupancy above the occupied threshold.
    Occupied,
    /// Probability of occupancy below the free threshold.
    Free,
    /// Never observed.
    Unknown,
}

/// Configuration of the occupancy map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OctoMapConfig {
    /// Voxel edge length, metres. The paper sweeps 0.15 m – 1.0 m.
    pub resolution: f64,
    /// Log-odds added on a hit.
    pub hit_log_odds: f64,
    /// Log-odds subtracted on a pass-through (miss).
    pub miss_log_odds: f64,
    /// Clamping bounds on accumulated log-odds.
    pub clamp: (f64, f64),
    /// Log-odds above which a voxel counts as occupied.
    pub occupied_threshold: f64,
    /// Maximum ray length inserted into the map, metres.
    pub max_range: f64,
}

impl OctoMapConfig {
    /// Creates a configuration with the given resolution and OctoMap's
    /// standard probabilistic parameters.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not strictly positive.
    pub fn with_resolution(resolution: f64) -> Self {
        assert!(
            resolution > 0.0,
            "resolution must be positive, got {resolution}"
        );
        OctoMapConfig {
            resolution,
            hit_log_odds: 0.85,
            miss_log_odds: 0.4,
            clamp: (-2.0, 3.5),
            occupied_threshold: 0.0,
            max_range: 30.0,
        }
    }

    /// The fine resolution (0.15 m) of the paper's case study — safe through
    /// doorways but expensive.
    pub fn fine() -> Self {
        OctoMapConfig::with_resolution(0.15)
    }

    /// The coarse resolution (0.80 m) of the paper's case study — cheap but
    /// blind to door-width openings.
    pub fn coarse() -> Self {
        OctoMapConfig::with_resolution(0.80)
    }
}

impl Default for OctoMapConfig {
    fn default() -> Self {
        OctoMapConfig::with_resolution(0.5)
    }
}

/// Absent-child sentinel of the node arena.
const NIL: u32 = u32::MAX;

/// High bit tagging an arena reference as a leaf-pool index; the low 31 bits
/// then index [`OctoMap::leaf_values`]. An untagged reference indexes
/// [`OctoMap::nodes`]. `NIL` is reserved (leaf indices stay below
/// `LEAF_BIT - 1`), so a reference is one of exactly three things: absent,
/// leaf, or interior.
const LEAF_BIT: u32 = 1 << 31;

/// Returns `true` when the arena reference points at a leaf.
fn is_leaf_ref(r: u32) -> bool {
    r != NIL && r & LEAF_BIT != 0
}

/// One entry of the incremental free-voxel index: the dedup-winning leaf of a
/// rounded-centre voxel key, as a full `collect_leaves` walk would report it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct KnownLeaf {
    /// The leaf centre exactly as the octree descent accumulates it
    /// (bit-identical to what the tree walk pushes for this leaf).
    center: Vec3,
    /// DFS rank of the leaf: the root-to-leaf octant path, packed three bits
    /// per level, root octant most significant. This totally orders leaves in
    /// tree-walk order, which reproduces the walk's last-in-walk-order-wins
    /// dedup when two adjacent leaf centres round to the same voxel key (the
    /// non-dyadic-resolution merge artifact the golden fixtures pin).
    rank: u64,
    /// Whether the leaf's log-odds currently exceeds the occupied threshold.
    occupied: bool,
}

/// The probabilistic occupancy octree.
///
/// # Example
///
/// ```
/// use mav_perception::{OctoMap, OctoMapConfig, Occupancy};
/// use mav_types::Vec3;
///
/// let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 64.0);
/// map.insert_ray(&Vec3::new(0.0, 0.0, 1.0), &Vec3::new(5.0, 0.0, 1.0));
/// assert_eq!(map.query(&Vec3::new(5.0, 0.0, 1.0)), Occupancy::Occupied);
/// assert_eq!(map.query(&Vec3::new(2.5, 0.0, 1.0)), Occupancy::Free);
/// assert_eq!(map.query(&Vec3::new(0.0, 0.0, 20.0)), Occupancy::Unknown);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OctoMap {
    config: OctoMapConfig,
    /// Half-extent of the cubic octree domain, metres.
    half_extent: f64,
    /// Tree depth such that leaf size <= resolution.
    depth: u32,
    /// Interior nodes of the arena-allocated octree: eight tagged child
    /// references each ([`NIL`] = absent child, high bit set = index into
    /// `leaf_values`, otherwise an index into this vector). The flat layout
    /// replaces the old boxed-enum tree, killing one heap allocation and one
    /// pointer chase per level on every descent — the cost every query, ray
    /// insertion and batched scan update used to pay.
    nodes: Vec<[u32; 8]>,
    /// Leaf log-odds values, stored inline in a flat pool and referenced by
    /// tagged indices in `nodes`.
    leaf_values: Vec<f64>,
    /// Tagged reference to the root node; [`NIL`] while nothing was observed.
    root: u32,
    grid: GridSpec,
    /// Number of leaf updates performed (a proxy for the work the kernel did).
    updates: u64,
    /// Flat spatial index over the occupied leaf voxels, maintained
    /// incrementally by every leaf update (ray insertion, batched scan
    /// insertion and re-resolution all funnel through
    /// [`OctoMap::update_leaf_apply`]). Keys are [`pack_voxel_key`]s of
    /// 4×4×4-voxel *block* coordinates; values are 64-bit occupancy masks of
    /// the block's voxels. Collision queries walk this hash index instead of
    /// descending the octree once per neighbour voxel.
    occupied_blocks: HashMap<u64, u64, VoxelHashBuilder>,
    /// Number of occupied leaf voxels, kept exactly in sync with the tree
    /// (the same per-voxel occupancy the collision queries see).
    occupied_count: usize,
    /// The incremental free-voxel index: for every rounded-centre voxel key,
    /// the dedup-winning leaf a full `collect_leaves` walk would report
    /// (centre, walk rank and occupancy flag), maintained by every leaf
    /// update. [`OctoMap::known_voxel_count`] is this map's size — the same
    /// dedup-by-rounded-centre accounting the tree walk has always used (at
    /// non-dyadic resolutions adjacent leaf centres can round to the same
    /// key; golden mission fixtures pin that behaviour) — and
    /// [`OctoMap::free_voxel_centers`] filters its values, so frontier
    /// extraction no longer pays a full-tree walk per call.
    known_leaves: HashMap<u64, KnownLeaf, VoxelHashBuilder>,
    /// Block-bitmask sibling of `occupied_blocks` over *known* (ever-observed)
    /// leaf voxels: keys are [`pack_voxel_key`]s of 4×4×4-voxel block
    /// coordinates, values are 64-bit known masks. Leaves are only ever
    /// created (never removed short of [`OctoMap::clear`]), so maintenance is
    /// one bit-set per materialised leaf. Frontier extraction answers its
    /// unknown-neighbour probes from this index instead of one octree descent
    /// per neighbour voxel.
    known_blocks: HashMap<u64, u64, VoxelHashBuilder>,
    /// Whether voxel indices of this domain fit the 21-bit key packing. All
    /// MAVBench worlds do; a multi-kilometre domain at centimetre resolution
    /// would not, and falls back to the reference tree-scan queries.
    index_packable: bool,
}

impl OctoMap {
    /// Creates an empty map covering the cube `[-half_extent, half_extent]³`
    /// (shifted up so z spans `[0, 2 × half_extent]` is *not* done — the cube
    /// is centred at the origin, which covers all MAVBench worlds).
    ///
    /// # Panics
    ///
    /// Panics if `half_extent` is not strictly positive.
    pub fn new(config: OctoMapConfig, half_extent: f64) -> Self {
        let mut map = OctoMap {
            grid: GridSpec::new(config.resolution),
            config,
            half_extent: 0.0,
            depth: 0,
            nodes: Vec::new(),
            leaf_values: Vec::new(),
            root: NIL,
            updates: 0,
            occupied_blocks: HashMap::with_hasher(VoxelHashBuilder::default()),
            occupied_count: 0,
            known_leaves: HashMap::with_hasher(VoxelHashBuilder::default()),
            known_blocks: HashMap::with_hasher(VoxelHashBuilder::default()),
            index_packable: false,
        };
        map.reset(config, half_extent);
        map
    }

    /// Empties the map back to the just-constructed state while keeping the
    /// arena, leaf pool, block-bitmask index and free-voxel index allocations
    /// (their `Vec`/`HashMap` capacities survive). The domain geometry is
    /// unchanged; use [`OctoMap::reset`] to also reshape it. Because every
    /// mutation funnels through the same leaf-update path and arena indices
    /// restart at zero, a cleared map is bit-identical to a fresh
    /// [`OctoMap::new`] under any subsequent update sequence — the property
    /// the episode-reuse layer (and its proptests) rely on.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.leaf_values.clear();
        self.root = NIL;
        self.updates = 0;
        self.occupied_blocks.clear();
        self.occupied_count = 0;
        self.known_leaves.clear();
        self.known_blocks.clear();
    }

    /// [`OctoMap::clear`] plus a domain reshape: recomputes the geometry
    /// exactly as `OctoMap::new(config, half_extent)` would (depth, aligned
    /// half-extent, traversal grid, index packability) while reusing the
    /// storage of this map. `new` is implemented on top of this, so the two
    /// cannot drift apart.
    ///
    /// # Panics
    ///
    /// Panics if `half_extent` is not strictly positive.
    pub fn reset(&mut self, config: OctoMapConfig, half_extent: f64) {
        assert!(half_extent > 0.0, "half extent must be positive");
        let leaves_per_axis = (2.0 * half_extent / config.resolution).ceil().max(1.0);
        let depth = (leaves_per_axis.log2().ceil() as u32).max(1);
        // Expand the domain so that each octree leaf is exactly one
        // `resolution`-sized voxel and leaf boundaries align with the ray
        // traversal grid; otherwise a leaf could straddle two traversal cells
        // and updates/queries would disagree near voxel boundaries.
        let aligned_half_extent = config.resolution * (1u64 << depth) as f64 / 2.0;
        let half_extent = aligned_half_extent.max(half_extent);
        self.grid = GridSpec::new(config.resolution);
        self.config = config;
        self.half_extent = half_extent;
        self.depth = depth;
        // In-domain voxel indices are bounded by half_extent / resolution;
        // query neighbourhoods only ever reach out-of-domain (hence
        // never-occupied) voxels beyond the packing range, so packability
        // of the domain itself is the only requirement.
        self.index_packable = half_extent / config.resolution < (1u64 << 20) as f64;
        self.clear();
    }

    /// The map configuration.
    pub fn config(&self) -> &OctoMapConfig {
        &self.config
    }

    /// The voxel edge length in metres.
    pub fn resolution(&self) -> f64 {
        self.config.resolution
    }

    /// The octree depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of leaf updates performed since construction.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Returns `true` when `point` lies inside the octree domain.
    pub fn in_domain(&self, point: &Vec3) -> bool {
        point.x.abs() <= self.half_extent
            && point.y.abs() <= self.half_extent
            && point.z.abs() <= self.half_extent
    }

    /// Enumerates the in-domain (voxel index, voxel centre, log-odds delta)
    /// updates of one sensor ray, without touching the tree. Shared by
    /// [`OctoMap::insert_ray`] and the batched
    /// [`OctoMap::insert_point_cloud`] so the two can never disagree on ray
    /// semantics (truncation, hit vs miss, domain filtering). An associated
    /// function over copies of the cheap geometry state, so callers may
    /// mutate the tree from inside `apply`.
    fn for_each_ray_update(
        grid: GridSpec,
        config: OctoMapConfig,
        half_extent: f64,
        origin: &Vec3,
        endpoint: &Vec3,
        mut apply: impl FnMut(GridIndex, Vec3, f64),
    ) {
        let dir = *endpoint - *origin;
        let range = dir.norm();
        if range <= f64::EPSILON {
            return;
        }
        let (end, hit) = if range > config.max_range {
            (*origin + dir.normalized() * config.max_range, false)
        } else {
            (*endpoint, true)
        };
        let mut cells = RAY_CELLS.with(|c| c.take());
        grid.traverse_into(origin, &end, &mut cells);
        let n = cells.len();
        for (i, &cell) in cells.iter().enumerate() {
            let center = grid.center_of(&cell);
            if center.x.abs() > half_extent
                || center.y.abs() > half_extent
                || center.z.abs() > half_extent
            {
                continue;
            }
            let is_endpoint = i + 1 == n;
            let delta = if is_endpoint && hit {
                config.hit_log_odds
            } else {
                -config.miss_log_odds
            };
            apply(cell, center, delta);
        }
        RAY_CELLS.with(|c| *c.borrow_mut() = cells);
    }

    /// Integrates a single sensor ray: every voxel between `origin` and
    /// `endpoint` (exclusive) is updated as free, the endpoint voxel as
    /// occupied. Rays longer than `max_range` are truncated and their endpoint
    /// treated as free space (no hit).
    pub fn insert_ray(&mut self, origin: &Vec3, endpoint: &Vec3) {
        let (grid, config, half_extent) = (self.grid, self.config, self.half_extent);
        Self::for_each_ray_update(
            grid,
            config,
            half_extent,
            origin,
            endpoint,
            |_cell, center, delta| self.update_leaf(&center, delta),
        );
    }

    /// Batched insertion pays for its per-crossing bookkeeping only when many
    /// rays cross each voxel. Sharing grows with ray density and voxel size;
    /// `points × resolution²` is the calibrated proxy (criterion octomap
    /// bench, BENCH_pr2.json): below ≈250 ray-by-ray insertion wins, above it
    /// batching wins (up to ~1.45X on dense scans at coarse resolutions).
    const BATCH_SHARING_THRESHOLD: f64 = 250.0;

    /// Integrates a whole point cloud captured from `cloud.origin`.
    ///
    /// When the scan is dense relative to the voxel size (see
    /// the internal `BATCH_SHARING_THRESHOLD`), updates are batched per voxel
    /// before any tree traversal: voxels close to the sensor are crossed by
    /// almost every ray of the scan, so grouping the scan's (voxel → ordered
    /// deltas) first and descending the octree once per *voxel* instead of
    /// once per *ray crossing* removes the bulk of the traversal work. Both
    /// paths produce bit-identical maps (see the equivalence test): per-voxel
    /// delta order (ray order) is preserved and each delta is clamped
    /// individually.
    pub fn insert_point_cloud(&mut self, cloud: &PointCloud) {
        let sharing = cloud.len() as f64 * self.config.resolution * self.config.resolution;
        // The batched path packs voxel indices into 21 bits per axis; a
        // domain wider than that (multi-km at centimetre resolution) must
        // take the ray-by-ray path or distinct voxels would alias.
        if sharing < Self::BATCH_SHARING_THRESHOLD || !self.index_packable {
            let origin = cloud.origin;
            for point in cloud.iter() {
                self.insert_ray(&origin, &point);
            }
        } else {
            self.insert_point_cloud_batched(cloud);
        }
    }

    /// The batched insertion path: group per-voxel deltas across the whole
    /// scan, then apply each voxel's ordered sequence in one tree descent.
    /// The grouping buffers come from a per-thread [`GroupScratch`], so the
    /// steady-state mapping tick performs no grouping allocations at all —
    /// the table, the entry vector and the spill vectors of the previous scan
    /// are all recycled.
    fn insert_point_cloud_batched(&mut self, cloud: &PointCloud) {
        let (grid, config, half_extent) = (self.grid, self.config, self.half_extent);
        let clamp = config.clamp;
        GROUP_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            Self::group_ray_range_into(grid, config, half_extent, cloud, 0, cloud.len(), scratch);
            for (_, center, first, rest) in &scratch.grouped {
                let count = 1 + rest.len() as u64;
                self.update_leaf_apply(center, count, |log_odds| {
                    *log_odds = (*log_odds + first).clamp(clamp.0, clamp.1);
                    for delta in rest {
                        *log_odds = (*log_odds + delta).clamp(clamp.0, clamp.1);
                    }
                });
            }
        });
    }

    /// Groups the per-voxel updates of rays `lo..hi` of `cloud` in
    /// first-touch order: `(packed voxel key, centre, first delta, later
    /// deltas)`. Shared by the serial batched path (whole-scan range) and the
    /// parallel path (one contiguous chunk per worker), so the two can never
    /// disagree on grouping semantics.
    ///
    /// Hash-map iteration order never leaks into the output. The first delta
    /// is stored inline: far voxels are crossed by a single ray, so the
    /// common case needs no spill allocation at all. In-domain voxel indices
    /// are bounded by half_extent / resolution, so the key packs into one u64
    /// and costs a single hash mix per crossing. The table is sized for
    /// *distinct* voxels, not crossings: the batched paths only run when many
    /// rays share each voxel (the sharing gate above), so dividing the
    /// crossing estimate by a conservative sharing factor avoids allocating a
    /// table an order of magnitude too large on every mapping tick.
    #[allow(clippy::type_complexity)]
    fn group_ray_range(
        grid: GridSpec,
        config: OctoMapConfig,
        half_extent: f64,
        cloud: &PointCloud,
        lo: usize,
        hi: usize,
    ) -> Vec<(u64, Vec3, f64, Vec<f64>)> {
        let mut scratch = GroupScratch::default();
        Self::group_ray_range_into(grid, config, half_extent, cloud, lo, hi, &mut scratch);
        scratch.grouped
    }

    /// [`OctoMap::group_ray_range`] writing into reusable buffers: the table
    /// and entry vector keep their capacity across scans, and the spill
    /// vectors of the previous scan are recycled through
    /// [`GroupScratch::spare`] so shared voxels stop allocating once the
    /// buffers are warm. The grouping itself — entry order, per-voxel delta
    /// order — is byte-for-byte the allocating version's.
    fn group_ray_range_into(
        grid: GridSpec,
        config: OctoMapConfig,
        half_extent: f64,
        cloud: &PointCloud,
        lo: usize,
        hi: usize,
        scratch: &mut GroupScratch,
    ) {
        let origin = cloud.origin;
        let crossings_estimate =
            ((hi - lo) as f64 * (config.max_range / config.resolution)) as usize;
        scratch.recycle();
        let desired = (crossings_estimate / 8).clamp(64, 1 << 18);
        if scratch.index_of.capacity() < desired {
            scratch.index_of.reserve(desired);
        }
        let GroupScratch {
            index_of,
            grouped,
            spare,
        } = scratch;
        for i in lo..hi {
            let point = cloud.point(i);
            Self::for_each_ray_update(
                grid,
                config,
                half_extent,
                &origin,
                &point,
                |cell, center, delta| match index_of.entry(pack_voxel_key(&cell)) {
                    std::collections::hash_map::Entry::Occupied(slot) => {
                        grouped[*slot.get() as usize].3.push(delta);
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(grouped.len() as u32);
                        let rest = spare.pop().unwrap_or_default();
                        grouped.push((pack_voxel_key(&cell), center, delta, rest));
                    }
                },
            );
        }
    }

    /// Integrates a whole point cloud using `threads` worker threads,
    /// producing a map bit-identical to [`OctoMap::insert_point_cloud`] on
    /// the same cloud (property-tested at every thread count, like the
    /// batched-vs-ray-by-ray equivalence).
    ///
    /// Three phases: (1) the scan is split into contiguous ray chunks, one
    /// worker grouping each chunk's per-voxel deltas; merging the chunk
    /// groupings in chunk order reproduces the serial first-touch grouping
    /// exactly, because chunks are contiguous in ray order. (2) Workers fold
    /// every voxel's ordered delta sequence through the clamp chain against a
    /// read-only probe of the pre-scan tree. (3) A serial commit descends
    /// once per voxel in grouping order and stores the folded values,
    /// updating the occupancy indexes and counters through the single
    /// `OctoMap::update_leaf_apply` funnel.
    ///
    /// Phase 2's probe assumes distinct voxels resolve to distinct leaves; a
    /// coarse (shallower-than-full-depth) leaf on a probed path could be
    /// shared by several updated voxels, so that case — which never arises
    /// from ray insertion, only from exotic hand-built maps — falls back to
    /// the serial fold in phase 3.
    pub fn insert_point_cloud_parallel(&mut self, cloud: &PointCloud, threads: usize) {
        let threads = threads.max(1);
        if !self.index_packable {
            // Voxel keys would alias: take the ray-by-ray path, which the
            // serial public entry point uses on such domains too.
            let origin = cloud.origin;
            for point in cloud.iter() {
                self.insert_ray(&origin, &point);
            }
            return;
        }
        let (grid, config, half_extent) = (self.grid, self.config, self.half_extent);
        // Phase 1: per-chunk grouping on workers, merged in chunk order.
        let chunk_len = cloud.len().div_ceil(threads).max(1);
        let ranges: Vec<(usize, usize)> = (0..cloud.len())
            .step_by(chunk_len)
            .map(|lo| (lo, (lo + chunk_len).min(cloud.len())))
            .collect();
        let chunk_groups = rayon::parallel_map_slice(&ranges, threads, |&(lo, hi)| {
            Self::group_ray_range(grid, config, half_extent, cloud, lo, hi)
        });
        let mut grouped: Vec<(Vec3, f64, Vec<f64>)> = Vec::new();
        let mut index_of: HashMap<u64, u32, VoxelHashBuilder> =
            HashMap::with_capacity_and_hasher(1 << 12, VoxelHashBuilder::default());
        for chunk in chunk_groups {
            for (key, center, first, rest) in chunk {
                match index_of.entry(key) {
                    std::collections::hash_map::Entry::Occupied(slot) => {
                        let entry = &mut grouped[*slot.get() as usize];
                        entry.2.push(first);
                        entry.2.extend(rest);
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(grouped.len() as u32);
                        grouped.push((center, first, rest));
                    }
                }
            }
        }
        // Phase 2: read-only probe + clamp-chain fold per voxel, on workers.
        let clamp = config.clamp;
        let chunk = grouped.len().div_ceil(threads).max(1);
        let folded: Vec<(f64, bool)> = {
            use rayon::prelude::*;
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build is infallible");
            pool.install(|| {
                grouped
                    .par_chunks(chunk)
                    .map(|entries| {
                        entries
                            .iter()
                            .map(|(center, first, rest)| {
                                let probe = self.probe_leaf(center);
                                let shallow = matches!(probe, Some((_, false)));
                                let mut value = probe.map(|(v, _)| v).unwrap_or(0.0);
                                value = (value + first).clamp(clamp.0, clamp.1);
                                for delta in rest {
                                    value = (value + delta).clamp(clamp.0, clamp.1);
                                }
                                (value, shallow)
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        // Phase 3: deterministic serial commit in grouping order.
        if folded.iter().any(|&(_, shallow)| shallow) {
            // Coarse leaf on a probed path: the folded values may not be
            // independent per voxel. Apply the grouped deltas serially — the
            // exact batched-path fold.
            for (center, first, rest) in grouped {
                let count = 1 + rest.len() as u64;
                self.update_leaf_apply(&center, count, move |log_odds| {
                    *log_odds = (*log_odds + first).clamp(clamp.0, clamp.1);
                    for delta in &rest {
                        *log_odds = (*log_odds + delta).clamp(clamp.0, clamp.1);
                    }
                });
            }
            return;
        }
        for ((center, _, rest), (value, _)) in grouped.iter().zip(folded) {
            let count = 1 + rest.len() as u64;
            self.update_leaf_apply(center, count, move |log_odds| *log_odds = value);
        }
    }

    /// Occupancy of the voxel containing `point`.
    pub fn query(&self, point: &Vec3) -> Occupancy {
        if !self.in_domain(point) {
            return Occupancy::Unknown;
        }
        match self.leaf_log_odds(point) {
            None => Occupancy::Unknown,
            Some(l) if l > self.config.occupied_threshold => Occupancy::Occupied,
            Some(_) => Occupancy::Free,
        }
    }

    /// Returns `true` when a vehicle of half-width `radius` centred at `point`
    /// overlaps any occupied *or unknown-adjacent* voxel. Unknown space is
    /// treated as free here; planners that must be conservative should also
    /// call [`OctoMap::query`] on the point itself.
    ///
    /// Decision-identical to
    /// [`OctoMap::is_occupied_with_inflation_reference`] (property-tested),
    /// but served from the occupied-voxel hash index: instead of one octree
    /// descent per neighbour voxel, the query enumerates the few occupied
    /// voxels inside the inflation cube straight from the block bitmasks and
    /// classifies each against a precomputed offset ball.
    pub fn is_occupied_with_inflation(&self, point: &Vec3, radius: f64) -> bool {
        if !self.index_packable {
            return self.is_occupied_with_inflation_reference(point, radius);
        }
        if self.occupied_count == 0 {
            return false;
        }
        let r = radius.max(0.0);
        let reach = r + self.config.resolution * 0.87;
        let steps = (r / self.config.resolution).ceil() as i64;
        let center_idx = self.grid.index_of(point);
        let lo = GridIndex::new(
            center_idx.x - steps,
            center_idx.y - steps,
            center_idx.z - steps,
        );
        let hi = GridIndex::new(
            center_idx.x + steps,
            center_idx.y + steps,
            center_idx.z + steps,
        );
        let ball = offset_ball(self.config.resolution, r);
        self.scan_occupied_box(&lo, &hi, |v| {
            match ball.class(v.x - center_idx.x, v.y - center_idx.y, v.z - center_idx.z) {
                BALL_NEVER => false,
                BALL_ALWAYS => true,
                _ => self.grid.center_of(&v).distance(point) <= reach,
            }
        })
    }

    /// [`OctoMap::is_occupied_with_inflation`], but returning the *centre of
    /// the occupied voxel* that blocks the inflated vehicle (PR 5's
    /// blocking-voxel reporting), or `None` when the point is free. The
    /// `Some`/`None` decision is exactly the inflation predicate's; which of
    /// several blocking voxels is reported follows the query's scan order, so
    /// callers should treat it as "an occupied voxel inside the inflation
    /// ball", not a canonical nearest one.
    pub fn blocking_voxel_with_inflation(&self, point: &Vec3, radius: f64) -> Option<Vec3> {
        let r = radius.max(0.0);
        if !self.index_packable {
            // Reference fallback (domains too wide for 21-bit voxel keys):
            // the same cube walk as the reference predicate, returning the
            // first occupied voxel centre it accepts.
            let steps = (r / self.config.resolution).ceil() as i64;
            let center_idx = self.grid.index_of(point);
            for dx in -steps..=steps {
                for dy in -steps..=steps {
                    for dz in -steps..=steps {
                        let idx =
                            GridIndex::new(center_idx.x + dx, center_idx.y + dy, center_idx.z + dz);
                        let c = self.grid.center_of(&idx);
                        if c.distance(point) <= r + self.config.resolution * 0.87
                            && self.query(&c) == Occupancy::Occupied
                        {
                            return Some(c);
                        }
                    }
                }
            }
            return None;
        }
        if self.occupied_count == 0 {
            return None;
        }
        let reach = r + self.config.resolution * 0.87;
        let steps = (r / self.config.resolution).ceil() as i64;
        let center_idx = self.grid.index_of(point);
        let lo = GridIndex::new(
            center_idx.x - steps,
            center_idx.y - steps,
            center_idx.z - steps,
        );
        let hi = GridIndex::new(
            center_idx.x + steps,
            center_idx.y + steps,
            center_idx.z + steps,
        );
        let ball = offset_ball(self.config.resolution, r);
        let mut blocking = None;
        self.scan_occupied_box(&lo, &hi, |v| {
            let hit = match ball.class(v.x - center_idx.x, v.y - center_idx.y, v.z - center_idx.z) {
                BALL_NEVER => false,
                BALL_ALWAYS => true,
                _ => self.grid.center_of(&v).distance(point) <= reach,
            };
            if hit {
                blocking = Some(self.grid.center_of(&v));
            }
            hit
        });
        blocking
    }

    /// The pre-index inflation query: one full octree descent per voxel of
    /// the inflation cube. Kept verbatim as the executable specification the
    /// indexed query is property-tested against, and as the fallback for
    /// domains too wide for 21-bit voxel keys.
    pub fn is_occupied_with_inflation_reference(&self, point: &Vec3, radius: f64) -> bool {
        let r = radius.max(0.0);
        let steps = (r / self.config.resolution).ceil() as i64;
        let center_idx = self.grid.index_of(point);
        for dx in -steps..=steps {
            for dy in -steps..=steps {
                for dz in -steps..=steps {
                    let idx =
                        GridIndex::new(center_idx.x + dx, center_idx.y + dy, center_idx.z + dz);
                    let c = self.grid.center_of(&idx);
                    if c.distance(point) <= r + self.config.resolution * 0.87
                        && self.query(&c) == Occupancy::Occupied
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Returns `true` when the straight segment between `a` and `b`, swept by
    /// a vehicle of half-width `radius`, avoids every occupied voxel.
    ///
    /// Decision-identical to [`OctoMap::segment_free_reference`]
    /// (property-tested). The fast path walks the segment's crossed voxels
    /// with the grid DDA and probes the occupied-voxel index over the swept
    /// corridor — one bitmask probe per block instead of re-querying the
    /// whole inflation neighbourhood at every half-resolution sample. Only
    /// when the corridor contains an occupied voxel does the exact sampled
    /// predicate run (against the indexed point query), so the common
    /// planner case — a free segment — never touches the octree at all.
    pub fn segment_free(&self, a: &Vec3, b: &Vec3, radius: f64) -> bool {
        if !self.index_packable {
            return self.segment_free_reference(a, b, radius);
        }
        if self.occupied_count == 0 {
            return true;
        }
        if self.segment_corridor_clear(a, b, radius) {
            return true;
        }
        // An occupied voxel sits near the swept corridor: fall back to the
        // exact sampled predicate (every candidate an old sample could see is
        // inside the corridor, so the prefilter never hides a collision).
        let dist = a.distance(b);
        let step = (self.config.resolution * 0.5).max(0.05);
        let samples = ((dist / step).ceil() as usize).max(1);
        for i in 0..=samples {
            let t = i as f64 / samples as f64;
            let p = a.lerp(b, t);
            if self.is_occupied_with_inflation(&p, radius) {
                return false;
            }
        }
        true
    }

    /// [`OctoMap::segment_free`], but returning the *centre of the occupied
    /// voxel* that blocks the swept segment (PR 5's blocking-voxel
    /// reporting), or `None` when the segment is free. `Some`/`None` agrees
    /// exactly with `segment_free` — same DDA corridor prefilter, same exact
    /// sampled predicate — so a collision monitor can aim its alert at the
    /// real obstruction in the *same* pass that detects it, instead of
    /// re-running the sampled predicate to locate what blocked the corridor.
    /// The reported voxel is the one blocking the first blocked sample along
    /// the segment (direction a → b).
    pub fn segment_blocking_voxel(&self, a: &Vec3, b: &Vec3, radius: f64) -> Option<Vec3> {
        if self.index_packable {
            if self.occupied_count == 0 {
                return None;
            }
            if self.segment_corridor_clear(a, b, radius) {
                return None;
            }
        }
        // An occupied voxel sits near the corridor (or the domain is too wide
        // for the index): run the exact sampled predicate once and report the
        // voxel blocking the first blocked sample.
        let dist = a.distance(b);
        let step = (self.config.resolution * 0.5).max(0.05);
        let samples = ((dist / step).ceil() as usize).max(1);
        for i in 0..=samples {
            let t = i as f64 / samples as f64;
            let p = a.lerp(b, t);
            if let Some(voxel) = self.blocking_voxel_with_inflation(&p, radius) {
                return Some(voxel);
            }
        }
        None
    }

    /// The pre-index swept-segment predicate: a point sample every
    /// half-resolution, each paying a full inflation-cube tree scan. Kept as
    /// the executable specification [`OctoMap::segment_free`] is
    /// property-tested against.
    pub fn segment_free_reference(&self, a: &Vec3, b: &Vec3, radius: f64) -> bool {
        let dist = a.distance(b);
        let step = (self.config.resolution * 0.5).max(0.05);
        let samples = ((dist / step).ceil() as usize).max(1);
        for i in 0..=samples {
            let t = i as f64 / samples as f64;
            let p = a.lerp(b, t);
            if self.is_occupied_with_inflation_reference(&p, radius) {
                return false;
            }
        }
        true
    }

    /// DDA prefilter for [`OctoMap::segment_free`]: walks the voxels crossed
    /// by the segment and probes the occupied-voxel index over an inflated
    /// corridor around them. Returns `true` when no occupied voxel lies
    /// anywhere in the corridor — which proves the sampled predicate free,
    /// because every voxel a sample's inflation cube can inspect is within
    /// `ceil(radius / resolution)` cells of the sample's own voxel, and every
    /// sample's voxel is within one cell of a crossed voxel (samples lie on
    /// the segment; the extra `+ 1` of padding absorbs corner-cutting and
    /// floating-point straddle at cell boundaries).
    fn segment_corridor_clear(&self, a: &Vec3, b: &Vec3, radius: f64) -> bool {
        let pad = (radius.max(0.0) / self.config.resolution).ceil() as i64 + 1;
        let mut cells = RAY_CELLS.with(|c| c.take());
        self.grid.traverse_into(a, b, &mut cells);
        let clear = self.corridor_cells_clear(&cells, pad);
        RAY_CELLS.with(|c| *c.borrow_mut() = cells);
        clear
    }

    /// The probe loop of [`OctoMap::segment_corridor_clear`] over an
    /// already-traversed cell sequence.
    fn corridor_cells_clear(&self, cells: &[GridIndex], pad: i64) -> bool {
        let mut prev: Option<GridIndex> = None;
        for &cell in cells {
            let occupied_near = match prev {
                // First cell: probe the full corridor cube around it.
                None => self.any_occupied_in_box(
                    &GridIndex::new(cell.x - pad, cell.y - pad, cell.z - pad),
                    &GridIndex::new(cell.x + pad, cell.y + pad, cell.z + pad),
                ),
                Some(p) => {
                    let (dx, dy, dz) = (cell.x - p.x, cell.y - p.y, cell.z - p.z);
                    if dx.abs() + dy.abs() + dz.abs() == 1 {
                        // Unit DDA step: the corridor cube moved by one cell,
                        // so only its leading face slab is new.
                        let (mut lo, mut hi) = (
                            GridIndex::new(cell.x - pad, cell.y - pad, cell.z - pad),
                            GridIndex::new(cell.x + pad, cell.y + pad, cell.z + pad),
                        );
                        if dx != 0 {
                            let face = if dx > 0 { hi.x } else { lo.x };
                            lo.x = face;
                            hi.x = face;
                        } else if dy != 0 {
                            let face = if dy > 0 { hi.y } else { lo.y };
                            lo.y = face;
                            hi.y = face;
                        } else {
                            let face = if dz > 0 { hi.z } else { lo.z };
                            lo.z = face;
                            hi.z = face;
                        }
                        self.any_occupied_in_box(&lo, &hi)
                    } else {
                        // Non-unit jump (the DDA's final end-cell append, or a
                        // budget-exhausted skip): conservatively probe the
                        // whole box spanning the jump.
                        self.any_occupied_in_box(
                            &GridIndex::new(
                                cell.x.min(p.x) - pad,
                                cell.y.min(p.y) - pad,
                                cell.z.min(p.z) - pad,
                            ),
                            &GridIndex::new(
                                cell.x.max(p.x) + pad,
                                cell.y.max(p.y) + pad,
                                cell.z.max(p.z) + pad,
                            ),
                        )
                    }
                }
            };
            if occupied_near {
                return false;
            }
            prev = Some(cell);
        }
        true
    }

    /// Returns `true` when any occupied voxel lies in the inclusive
    /// voxel-index box `[lo, hi]`.
    fn any_occupied_in_box(&self, lo: &GridIndex, hi: &GridIndex) -> bool {
        self.scan_occupied_box(lo, hi, |_| true)
    }

    /// Visits the occupied voxels inside the inclusive voxel-index box
    /// `[lo, hi]`, stopping early when `visit` returns `true`; returns
    /// whether any visit did. One hash probe per overlapped 4×4×4 block; the
    /// box window is cut out of each block's bitmask with three axis masks.
    fn scan_occupied_box(
        &self,
        lo: &GridIndex,
        hi: &GridIndex,
        mut visit: impl FnMut(GridIndex) -> bool,
    ) -> bool {
        for bz in lo.z.div_euclid(4)..=hi.z.div_euclid(4) {
            for by in lo.y.div_euclid(4)..=hi.y.div_euclid(4) {
                for bx in lo.x.div_euclid(4)..=hi.x.div_euclid(4) {
                    let Some(key) = pack_voxel_key_checked(&GridIndex::new(bx, by, bz)) else {
                        // Beyond the packing range means beyond the (packable)
                        // domain: those voxels are unobservable, never occupied.
                        continue;
                    };
                    let Some(&mask) = self.occupied_blocks.get(&key) else {
                        continue;
                    };
                    // Cut the box window out of the block: bit i = x + 4y +
                    // 16z, so the x range replicates over all 16 nibbles, the
                    // y range expands to nibbles replicated over the four z
                    // groups, and the z range expands to 16-bit groups.
                    let window = mask
                        & (axis_bits(lo.x, hi.x, bx) * 0x1111_1111_1111_1111)
                        & (NIBBLE_EXPAND[axis_bits(lo.y, hi.y, by) as usize]
                            * 0x0001_0001_0001_0001)
                        & GROUP_EXPAND[axis_bits(lo.z, hi.z, bz) as usize];
                    let mut m = window;
                    while m != 0 {
                        let bit = m.trailing_zeros() as i64;
                        m &= m - 1;
                        let v = GridIndex::new(
                            bx * 4 + (bit & 3),
                            by * 4 + ((bit >> 2) & 3),
                            bz * 4 + (bit >> 4),
                        );
                        if visit(v) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Number of occupied leaf voxels. O(1): served from the incrementally
    /// maintained counter (see [`OctoMap::known_voxel_count_scan`] for the
    /// tree-walk the counters are regression-tested against).
    pub fn occupied_voxel_count(&self) -> usize {
        self.occupied_count
    }

    /// Number of observed (free or occupied) leaf voxels. O(1): the size of
    /// the incrementally maintained key set, which reproduces the historical
    /// tree-walk accounting exactly (including its dedup by rounded centre).
    pub fn known_voxel_count(&self) -> usize {
        if self.index_packable {
            self.known_leaves.len()
        } else {
            self.known_voxel_count_scan()
        }
    }

    /// [`OctoMap::occupied_voxel_count`] recomputed by a full tree walk — the
    /// pre-index implementation, kept as the regression oracle for the O(1)
    /// counter. Caveat inherited from the internal `collect_leaves` walk: at
    /// non-dyadic resolutions the walk can merge adjacent leaves whose noisy
    /// centres round to the same key, so it may run a few voxels *below* the
    /// exact per-leaf count the collision queries (and the O(1) counter)
    /// use; at dyadic resolutions the two agree exactly.
    pub fn occupied_voxel_count_scan(&self) -> usize {
        self.collect_leaves()
            .iter()
            .filter(|(_, l)| *l > self.config.occupied_threshold)
            .count()
    }

    /// [`OctoMap::known_voxel_count`] recomputed by a full tree walk — the
    /// pre-index implementation, kept as the regression oracle for the O(1)
    /// counter.
    pub fn known_voxel_count_scan(&self) -> usize {
        self.collect_leaves().len()
    }

    /// Volume of observed space in cubic metres.
    pub fn mapped_volume(&self) -> f64 {
        self.known_voxel_count() as f64 * self.config.resolution.powi(3)
    }

    /// Centres of all known free voxels. Frontier extraction builds on this.
    ///
    /// Served from the incremental free-voxel index — O(known voxels) with no
    /// tree traversal — and bit-identical (centres, set membership and order)
    /// to the full-walk [`OctoMap::free_voxel_centers_scan`] it replaced,
    /// which remains as the regression oracle and the fallback for domains
    /// too wide for the voxel-key packing.
    pub fn free_voxel_centers(&self) -> Vec<Vec3> {
        let mut centers = Vec::new();
        self.free_voxel_centers_into(&mut centers);
        centers
    }

    /// [`OctoMap::free_voxel_centers`] into a caller-supplied buffer (cleared
    /// first), so a per-replan caller — frontier extraction ticks this every
    /// planning cycle — reuses one allocation instead of collecting a fresh
    /// `Vec` per call. Contents and order are identical to the allocating
    /// variant, which is implemented on top of this.
    pub fn free_voxel_centers_into(&self, centers: &mut Vec<Vec3>) {
        centers.clear();
        if !self.index_packable {
            centers.extend(self.free_voxel_centers_scan());
            return;
        }
        centers.extend(
            self.known_leaves
                .values()
                .filter(|leaf| !leaf.occupied)
                .map(|leaf| leaf.center),
        );
        // `total_cmp` + unstable sort orders identically to the historical
        // stable partial_cmp tuple sort here: centres are finite, never ±0.0
        // (they sit at (k + ½)·resolution) and pairwise distinct, so the two
        // comparators agree and stability cannot matter — while the unstable
        // sort skips the merge-sort temp buffer this hot path paid per call.
        centers.sort_unstable_by(|a, b| {
            a.x.total_cmp(&b.x)
                .then(a.y.total_cmp(&b.y))
                .then(a.z.total_cmp(&b.z))
        });
    }

    /// [`OctoMap::free_voxel_centers`] recomputed by a full tree walk — the
    /// pre-index implementation, kept as the executable specification the
    /// incremental free-voxel index is tested against.
    pub fn free_voxel_centers_scan(&self) -> Vec<Vec3> {
        self.collect_leaves()
            .into_iter()
            .filter(|(_, l)| *l <= self.config.occupied_threshold)
            .map(|(c, _)| c)
            .collect()
    }

    /// Centres of all occupied voxels.
    ///
    /// Served from the occupied block-bitmask index: one `center_of` per set
    /// mask bit instead of a full tree walk. Unlike the historical walk this
    /// is exact per-leaf (the walk's rounded-centre dedup could merge two
    /// adjacent leaves at non-dyadic resolutions, see
    /// [`OctoMap::occupied_voxel_count_scan`]), and centres are the grid's
    /// canonical voxel centres. The tree walk remains as
    /// [`OctoMap::occupied_voxel_centers_scan`].
    pub fn occupied_voxel_centers(&self) -> Vec<Vec3> {
        let mut centers = Vec::new();
        self.occupied_voxel_centers_into(&mut centers);
        centers
    }

    /// [`OctoMap::occupied_voxel_centers`] into a caller-supplied buffer
    /// (cleared first), the zero-allocation sibling of
    /// [`OctoMap::free_voxel_centers_into`]. Contents and order are identical
    /// to the allocating variant, which is implemented on top of this.
    pub fn occupied_voxel_centers_into(&self, centers: &mut Vec<Vec3>) {
        centers.clear();
        if !self.index_packable {
            centers.extend(self.occupied_voxel_centers_scan());
            return;
        }
        centers.reserve(self.occupied_count);
        for (&key, &mask) in &self.occupied_blocks {
            let block = unpack_voxel_key(key);
            let mut m = mask;
            while m != 0 {
                let bit = m.trailing_zeros() as i64;
                m &= m - 1;
                let voxel = GridIndex::new(
                    block.x * 4 + (bit & 3),
                    block.y * 4 + ((bit >> 2) & 3),
                    block.z * 4 + (bit >> 4),
                );
                centers.push(self.grid.center_of(&voxel));
            }
        }
        // Same comparator-equivalence argument as `free_voxel_centers_into`.
        centers.sort_unstable_by(|a, b| {
            a.x.total_cmp(&b.x)
                .then(a.y.total_cmp(&b.y))
                .then(a.z.total_cmp(&b.z))
        });
    }

    /// [`OctoMap::occupied_voxel_centers`] recomputed by a full tree walk —
    /// the pre-index implementation, kept as the regression oracle for the
    /// block-bitmask enumeration.
    pub fn occupied_voxel_centers_scan(&self) -> Vec<Vec3> {
        self.collect_leaves()
            .into_iter()
            .filter(|(_, l)| *l > self.config.occupied_threshold)
            .map(|(c, _)| c)
            .collect()
    }

    /// Returns `true` when the voxel containing `point` has never been
    /// observed.
    pub fn is_unknown(&self, point: &Vec3) -> bool {
        self.query(point) == Occupancy::Unknown
    }

    /// Returns `true` when any of the 6 face-neighbour voxels of the voxel
    /// containing `point` is unknown — the frontier predicate, asked once per
    /// free voxel every replan.
    ///
    /// Decision-identical to probing `point ± resolution` along each axis
    /// with [`OctoMap::is_unknown`] (property-tested), but served from the
    /// known-voxel block bitmasks: six hash-indexed bit tests instead of six
    /// octree descents. An out-of-domain neighbour has no leaf, so it reads
    /// as unknown from the index exactly as [`OctoMap::query`] reports it;
    /// neighbour indices sit at most one voxel outside the domain, within the
    /// alias-free range of the 21-bit key packing. Domains too wide for the
    /// packing fall back to the probe loop.
    pub fn has_unknown_neighbor6(&self, point: &Vec3) -> bool {
        if !self.index_packable {
            let r = self.config.resolution;
            return [
                Vec3::new(r, 0.0, 0.0),
                Vec3::new(-r, 0.0, 0.0),
                Vec3::new(0.0, r, 0.0),
                Vec3::new(0.0, -r, 0.0),
                Vec3::new(0.0, 0.0, r),
                Vec3::new(0.0, 0.0, -r),
            ]
            .iter()
            .any(|d| self.is_unknown(&(*point + *d)));
        }
        let idx = self.grid.index_of(point);
        idx.neighbors6().iter().any(|n| {
            let (block, bit) = block_of(n);
            self.known_blocks
                .get(&pack_voxel_key(&block))
                .is_none_or(|mask| mask & bit == 0)
        })
    }

    /// Rebuilds this map's observations into a new map at a different
    /// resolution (the dynamic-resolution policy of the paper's energy case
    /// study switches between 0.15 m and 0.80 m at runtime).
    pub fn reresolved(&self, new_resolution: f64) -> OctoMap {
        let mut config = self.config;
        config.resolution = new_resolution;
        let mut out = OctoMap::new(config, self.half_extent);
        for (center, log_odds) in self.collect_leaves() {
            out.update_leaf(&center, log_odds);
        }
        out
    }

    /// Axis-aligned bounds of the octree domain.
    pub fn domain(&self) -> Aabb {
        Aabb::new(
            Vec3::splat(-self.half_extent),
            Vec3::splat(self.half_extent),
        )
    }

    // ------------------------------------------------------------------
    // Internal octree machinery.
    // ------------------------------------------------------------------

    fn leaf_log_odds(&self, point: &Vec3) -> Option<f64> {
        self.probe_leaf(point).map(|(log_odds, _)| log_odds)
    }

    /// Read-only descent to the leaf covering `point`: its log-odds and
    /// whether it sits at full depth (`false` marks a coarse leaf that an
    /// update would have to push down). `None` when no leaf exists on the
    /// path — an update would then create one starting from 0.0.
    fn probe_leaf(&self, point: &Vec3) -> Option<(f64, bool)> {
        let mut r = self.root;
        let mut center = Vec3::ZERO;
        let mut half = self.half_extent;
        for _ in 0..self.depth {
            if r == NIL {
                return None;
            }
            if r & LEAF_BIT != 0 {
                return Some((self.leaf_values[(r & !LEAF_BIT) as usize], false));
            }
            let (idx, child_center) = child_of(point, &center, half);
            r = self.nodes[r as usize][idx];
            center = child_center;
            half /= 2.0;
        }
        if is_leaf_ref(r) {
            Some((self.leaf_values[(r & !LEAF_BIT) as usize], true))
        } else {
            None
        }
    }

    /// Allocates an interior node with no children, returning its reference.
    fn alloc_inner(&mut self) -> u32 {
        let index = self.nodes.len() as u32;
        assert!(
            index < LEAF_BIT,
            "octree arena interior-node pool exhausted"
        );
        self.nodes.push([NIL; 8]);
        index
    }

    /// Allocates a leaf holding `value`, returning its tagged reference.
    fn alloc_leaf(&mut self, value: f64) -> u32 {
        let index = self.leaf_values.len() as u32;
        assert!(index < LEAF_BIT - 1, "octree arena leaf pool exhausted");
        self.leaf_values.push(value);
        LEAF_BIT | index
    }

    /// Reads the arena slot `(parent, octant)`; a [`NIL`] parent means the
    /// root slot.
    fn read_slot(&self, slot: (u32, usize)) -> u32 {
        if slot.0 == NIL {
            self.root
        } else {
            self.nodes[slot.0 as usize][slot.1]
        }
    }

    /// Overwrites the arena slot `(parent, octant)` with `node`.
    fn write_slot(&mut self, slot: (u32, usize), node: u32) {
        if slot.0 == NIL {
            self.root = node;
        } else {
            self.nodes[slot.0 as usize][slot.1] = node;
        }
    }

    fn update_leaf(&mut self, point: &Vec3, delta: f64) {
        let clamp = self.config.clamp;
        self.update_leaf_apply(point, 1, move |log_odds| {
            *log_odds = (*log_odds + delta).clamp(clamp.0, clamp.1);
        });
    }

    /// Applies `apply` to the leaf value containing `point` in a single tree
    /// descent, recording `count` leaf updates. Batched scan insertion folds
    /// a whole voxel's ordered delta sequence through one descent this way.
    ///
    /// Every mutation of a leaf's log-odds flows through here — single rays,
    /// batched scans and [`OctoMap::reresolved`] alike — so this is the one
    /// place the occupied-voxel index and the O(1) counters are kept in sync
    /// with the tree.
    fn update_leaf_apply<F: FnOnce(&mut f64)>(&mut self, point: &Vec3, count: u64, apply: F) {
        if !self.in_domain(point) {
            return;
        }
        let touch = self.descend_apply(point, apply);
        self.updates += count;
        let threshold = self.config.occupied_threshold;
        let now = touch.after > threshold;
        if touch.created && self.index_packable {
            // The same dedup key collect_leaves() computes from this leaf's
            // centre during a tree walk (bit-identical: the descent
            // accumulates the centre with the exact additions the walk uses).
            // When two leaves collide on a key, the one later in walk order
            // wins, exactly as the walk's last-wins dedup insert decides.
            let res = self.config.resolution;
            let key = pack_voxel_key(&GridIndex::new(
                (touch.center.x / res).round() as i64,
                (touch.center.y / res).round() as i64,
                (touch.center.z / res).round() as i64,
            ));
            let leaf = KnownLeaf {
                center: touch.center,
                rank: touch.rank,
                occupied: now,
            };
            match self.known_leaves.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    if entry.get().rank <= touch.rank {
                        entry.insert(leaf);
                    }
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(leaf);
                }
            }
            // A materialised leaf marks its voxel known forever (leaves are
            // never removed short of `clear`), so the known-block index is
            // append-only. Keyed off the leaf centre exactly like the
            // occupied-block index below.
            let idx = self.grid.index_of(&touch.center);
            let (block, bit) = block_of(&idx);
            *self.known_blocks.entry(pack_voxel_key(&block)).or_insert(0) |= bit;
        }
        let was = !touch.created && touch.before > threshold;
        if was == now {
            return;
        }
        if now {
            self.occupied_count += 1;
        } else {
            self.occupied_count -= 1;
        }
        if self.index_packable {
            if !touch.created {
                // Keep the free-voxel index's occupancy flag in step — but
                // only when the crossing leaf is its key's dedup winner; a
                // shadowed leaf is invisible to the tree walk this index
                // mirrors.
                let res = self.config.resolution;
                let key = pack_voxel_key(&GridIndex::new(
                    (touch.center.x / res).round() as i64,
                    (touch.center.y / res).round() as i64,
                    (touch.center.z / res).round() as i64,
                ));
                if let Some(entry) = self.known_leaves.get_mut(&key) {
                    if entry.rank == touch.rank {
                        entry.occupied = now;
                    }
                }
            }
            // Key the index entry off the *leaf's own centre* (mid-cell, so
            // never within floating-point noise of a cell boundary), not the
            // update point: an update point sitting exactly on a boundary
            // then maps to whichever leaf the descent actually touched.
            let idx = self.grid.index_of(&touch.center);
            let (block, bit) = block_of(&idx);
            let key = pack_voxel_key(&block);
            if now {
                *self.occupied_blocks.entry(key).or_insert(0) |= bit;
            } else if let Some(mask) = self.occupied_blocks.get_mut(&key) {
                *mask &= !bit;
                if *mask == 0 {
                    self.occupied_blocks.remove(&key);
                }
            }
        }
    }

    /// The mutating arena descent: walks (and where needed materialises) the
    /// path from the root to the leaf covering `point`, applies `apply` to
    /// its log-odds, and reports what happened. Semantically identical to the
    /// old recursive pointer-tree update, including the coarse-leaf pushdown
    /// (the leaf slot rides down into the descended octant, so no pool entry
    /// is orphaned) and the replace-an-interior-node-at-full-depth repair.
    fn descend_apply<F: FnOnce(&mut f64)>(&mut self, point: &Vec3, apply: F) -> LeafTouch {
        if self.root == NIL {
            self.root = self.alloc_inner();
        }
        // `(NIL, _)` addresses the root slot; see `read_slot`/`write_slot`.
        let mut slot: (u32, usize) = (NIL, 0);
        let mut center = Vec3::ZERO;
        let mut half = self.half_extent;
        let mut rank: u64 = 0;
        let mut created = false;
        let mut remaining = self.depth;
        loop {
            let r = self.read_slot(slot);
            if remaining == 0 {
                if is_leaf_ref(r) {
                    let value = &mut self.leaf_values[(r & !LEAF_BIT) as usize];
                    let before = *value;
                    apply(value);
                    return LeafTouch {
                        created,
                        before,
                        after: *value,
                        center,
                        rank,
                    };
                }
                // Should be a leaf; replace an inner node if one snuck in.
                let mut log_odds = 0.0;
                apply(&mut log_odds);
                let leaf = self.alloc_leaf(log_odds);
                self.write_slot(slot, leaf);
                return LeafTouch {
                    created: true,
                    before: 0.0,
                    after: log_odds,
                    center,
                    rank,
                };
            }
            if is_leaf_ref(r) {
                // A coarse leaf observed at a shallower depth: refine it by
                // pushing its value down along the descended octant (simple
                // expansion), reusing the leaf's pool slot.
                let inner = self.alloc_inner();
                self.write_slot(slot, inner);
                let (idx, child_center) = child_of(point, &center, half);
                self.nodes[inner as usize][idx] = r;
                slot = (inner, idx);
                center = child_center;
                half /= 2.0;
                remaining -= 1;
                rank = (rank << 3) | idx as u64;
                continue;
            }
            let (idx, child_center) = child_of(point, &center, half);
            if self.nodes[r as usize][idx] == NIL {
                let child = if remaining == 1 {
                    // A leaf materialised by this descent is a newly observed
                    // voxel.
                    created = true;
                    self.alloc_leaf(0.0)
                } else {
                    self.alloc_inner()
                };
                self.nodes[r as usize][idx] = child;
            }
            slot = (r, idx);
            center = child_center;
            half /= 2.0;
            remaining -= 1;
            rank = (rank << 3) | idx as u64;
        }
    }

    fn collect_leaves(&self) -> Vec<(Vec3, f64)> {
        let mut out = Vec::new();
        if self.root != NIL {
            self.collect_arena(self.root, Vec3::ZERO, self.half_extent, &mut out);
        }
        // Merge duplicates (possible when a coarse leaf was later refined) by
        // keeping the most recently observed value — here, simply the last.
        let mut dedup: HashMap<(i64, i64, i64), (Vec3, f64)> = HashMap::new();
        for (c, l) in out {
            let key = (
                (c.x / self.config.resolution).round() as i64,
                (c.y / self.config.resolution).round() as i64,
                (c.z / self.config.resolution).round() as i64,
            );
            dedup.insert(key, (c, l));
        }
        let mut v: Vec<(Vec3, f64)> = dedup.into_values().collect();
        // Chained `total_cmp` ≡ the historical `partial_cmp` tuple sort:
        // leaf centres sit at (k + ½)·resolution, so they are finite, never
        // ±0.0, and pairwise distinct after the dedup — the comparators can
        // only disagree on values that never occur here (same argument as
        // the `free_voxel_centers_into` hot path).
        v.sort_by(|a, b| {
            a.0.x
                .total_cmp(&b.0.x)
                .then(a.0.y.total_cmp(&b.0.y))
                .then(a.0.z.total_cmp(&b.0.z))
        });
        v
    }
}

/// What one tree descent did to the leaf it reached: whether the leaf was
/// created by this update, its log-odds before and after, the leaf's own
/// centre (the authoritative identity of the voxel it covers) and its DFS
/// rank (see [`KnownLeaf::rank`]). This is what keeps the occupied-voxel and
/// free-voxel indexes and the O(1) counters exact.
struct LeafTouch {
    created: bool,
    before: f64,
    after: f64,
    center: Vec3,
    rank: u64,
}

/// Packs an in-domain voxel index into one u64 key (21 bits per axis,
/// offset-biased). Domain-filtered indices are far below the 2^20 bound:
/// even a 200 m domain at 0.10 m resolution spans only ±2000 cells.
fn pack_voxel_key(cell: &GridIndex) -> u64 {
    const BIAS: i64 = 1 << 20;
    debug_assert!(
        cell.x.abs() < BIAS && cell.y.abs() < BIAS && cell.z.abs() < BIAS,
        "voxel index out of packing range: {cell:?}"
    );
    (((cell.x + BIAS) as u64) << 42) | (((cell.y + BIAS) as u64) << 21) | ((cell.z + BIAS) as u64)
}

/// Inverse of [`pack_voxel_key`]: recovers the voxel (or block) index.
fn unpack_voxel_key(key: u64) -> GridIndex {
    const BIAS: i64 = 1 << 20;
    const MASK: u64 = (1 << 21) - 1;
    GridIndex::new(
        ((key >> 42) & MASK) as i64 - BIAS,
        ((key >> 21) & MASK) as i64 - BIAS,
        (key & MASK) as i64 - BIAS,
    )
}

/// [`pack_voxel_key`] for query neighbourhoods, which may legitimately reach
/// beyond the packing range: on a packable domain any index at or beyond
/// ±2^20 has its centre outside the octree domain, so `None` simply means
/// "unobservable, never occupied".
fn pack_voxel_key_checked(cell: &GridIndex) -> Option<u64> {
    const BIAS: i64 = 1 << 20;
    if cell.x.abs() < BIAS && cell.y.abs() < BIAS && cell.z.abs() < BIAS {
        Some(pack_voxel_key(cell))
    } else {
        None
    }
}

/// Reusable buffers of the batched-insertion grouping pass: the voxel-key
/// table, the first-touch-ordered entry vector and a pool of recycled spill
/// vectors (the per-voxel `Vec<f64>` of later deltas). Held per thread by
/// `GROUP_SCRATCH`; after the first scan on a thread the steady-state mapping
/// tick groups without allocating.
#[derive(Debug, Default)]
struct GroupScratch {
    index_of: HashMap<u64, u32, VoxelHashBuilder>,
    #[allow(clippy::type_complexity)]
    grouped: Vec<(u64, Vec3, f64, Vec<f64>)>,
    spare: Vec<Vec<f64>>,
}

impl GroupScratch {
    /// Clears the table and entry vector for the next scan, moving every
    /// spill vector that actually holds an allocation into the spare pool.
    fn recycle(&mut self) {
        self.index_of.clear();
        for (_, _, _, mut rest) in self.grouped.drain(..) {
            if rest.capacity() > 0 {
                rest.clear();
                self.spare.push(rest);
            }
        }
    }
}

thread_local! {
    /// Per-thread grouping buffers for the serial batched insertion path.
    static GROUP_SCRATCH: RefCell<GroupScratch> = RefCell::new(GroupScratch::default());
    /// Per-thread DDA cell buffer shared by ray insertion and the segment
    /// corridor prefilter — the two per-call traversals hot enough to show up
    /// in episode allocation counts. Take/replace (not borrow-across-call) so
    /// an unexpected nesting falls back to a fresh allocation instead of a
    /// RefCell panic.
    static RAY_CELLS: RefCell<Vec<GridIndex>> = const { RefCell::new(Vec::new()) };
}

/// Splits a voxel index into its 4×4×4 block coordinates and the block-local
/// occupancy bit (bit = x + 4·y + 16·z over the euclidean remainders).
fn block_of(idx: &GridIndex) -> (GridIndex, u64) {
    let block = GridIndex::new(
        idx.x.div_euclid(4),
        idx.y.div_euclid(4),
        idx.z.div_euclid(4),
    );
    let bit = idx.x.rem_euclid(4) + 4 * idx.y.rem_euclid(4) + 16 * idx.z.rem_euclid(4);
    (block, 1u64 << bit)
}

/// 4-bit mask of the block-local coordinates (0..4) of block `b` that fall
/// inside the inclusive axis range `[lo, hi]` (in voxel coordinates). Empty
/// intersections cannot occur: blocks are only enumerated over the box.
fn axis_bits(lo: i64, hi: i64, b: i64) -> u64 {
    let a = (lo.max(b * 4) - b * 4) as u32;
    let c = (hi.min(b * 4 + 3) - b * 4) as u32;
    ((1u64 << (c + 1)) - (1u64 << a)) & 0xF
}

/// Expands a 4-bit axis mask so each set bit becomes a nibble (`0xF`): the y
/// window of a block bitmask, before replication across the four z groups.
const NIBBLE_EXPAND: [u64; 16] = {
    let mut table = [0u64; 16];
    let mut m = 0;
    while m < 16 {
        let mut bits = 0u64;
        let mut i = 0;
        while i < 4 {
            if m & (1 << i) != 0 {
                bits |= 0xF << (4 * i);
            }
            i += 1;
        }
        table[m] = bits;
        m += 1;
    }
    table
};

/// Expands a 4-bit axis mask so each set bit becomes a 16-bit group: the z
/// window of a block bitmask.
const GROUP_EXPAND: [u64; 16] = {
    let mut table = [0u64; 16];
    let mut m = 0;
    while m < 16 {
        let mut bits = 0u64;
        let mut i = 0;
        while i < 4 {
            if m & (1 << i) != 0 {
                bits |= 0xFFFF << (16 * i);
            }
            i += 1;
        }
        table[m] = bits;
        m += 1;
    }
    table
};

/// Offset classes of the precomputed inflation ball: an occupied voxel at a
/// `NEVER` offset can never satisfy the reference distance test for any point
/// inside the centre voxel, an `ALWAYS` offset always does, and a `CHECK`
/// offset needs the exact per-query distance test.
const BALL_NEVER: u8 = 0;
const BALL_CHECK: u8 = 1;
const BALL_ALWAYS: u8 = 2;

/// The classified inflation neighbourhood for one (resolution, radius) pair:
/// a `(2·steps + 1)³` cube of [`BALL_NEVER`]/[`BALL_CHECK`]/[`BALL_ALWAYS`]
/// classes, indexed by voxel offset from the query point's voxel.
struct OffsetBall {
    steps: i64,
    classes: Vec<u8>,
}

impl OffsetBall {
    fn build(resolution: f64, radius: f64) -> OffsetBall {
        let reach = radius + resolution * 0.87;
        let steps = (radius / resolution).ceil() as i64;
        let width = (2 * steps + 1) as usize;
        let mut classes = vec![BALL_NEVER; width * width * width];
        // Guard band for the worst-case / best-case distance bounds below:
        // they are evaluated in floating point, so knife-edge offsets are
        // pushed into the exact-check class rather than misclassified.
        let eps = 1e-9 * resolution;
        let mut i = 0;
        for dx in -steps..=steps {
            for dy in -steps..=steps {
                for dz in -steps..=steps {
                    // For a query point anywhere in its voxel, the distance to
                    // the centre of the voxel `steps` away is bounded per axis
                    // by (|d| - 0.5)·res below and (|d| + 0.5)·res above.
                    let lo = |d: i64| (d.abs() as f64 - 0.5).max(0.0) * resolution;
                    let hi = |d: i64| (d.abs() as f64 + 0.5) * resolution;
                    let nearest = (lo(dx).powi(2) + lo(dy).powi(2) + lo(dz).powi(2)).sqrt();
                    let farthest = (hi(dx).powi(2) + hi(dy).powi(2) + hi(dz).powi(2)).sqrt();
                    classes[i] = if nearest > reach + eps {
                        BALL_NEVER
                    } else if farthest + eps <= reach {
                        BALL_ALWAYS
                    } else {
                        BALL_CHECK
                    };
                    i += 1;
                }
            }
        }
        OffsetBall { steps, classes }
    }

    /// Class of the offset `(dx, dy, dz)`; offsets outside the cube are
    /// `BALL_NEVER` (cannot happen for boxes built from the same `steps`).
    fn class(&self, dx: i64, dy: i64, dz: i64) -> u8 {
        let s = self.steps;
        if dx.abs() > s || dy.abs() > s || dz.abs() > s {
            return BALL_NEVER;
        }
        let w = 2 * s + 1;
        self.classes[(((dx + s) * w + (dy + s)) * w + (dz + s)) as usize]
    }
}

/// One cached inflation ball, keyed by the `(resolution, radius)` bit
/// patterns it was built for.
type CachedBall = ((u64, u64), Rc<OffsetBall>);

thread_local! {
    /// Per-thread cache of classified inflation balls. Planners query one or
    /// two radii per mission, so a small linear map beats hashing.
    static OFFSET_BALLS: RefCell<Vec<CachedBall>> = const { RefCell::new(Vec::new()) };
}

/// The classified inflation ball for `(resolution, radius)`, built on first
/// use per thread.
fn offset_ball(resolution: f64, radius: f64) -> Rc<OffsetBall> {
    let key = (resolution.to_bits(), radius.to_bits());
    OFFSET_BALLS.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((_, ball)) = cache.iter().find(|(k, _)| *k == key) {
            return Rc::clone(ball);
        }
        let ball = Rc::new(OffsetBall::build(resolution, radius));
        cache.push((key, Rc::clone(&ball)));
        ball
    })
}

/// A cheap multiply-xor hasher for packed voxel keys.
///
/// Batched scan insertion hashes every ray/voxel crossing; the standard
/// SipHash costs more per crossing than the tree descent it is meant to
/// save. Voxel keys are single, adversary-free integers, so one SplitMix-
/// style mix is plenty.
#[derive(Clone, Copy, Default)]
struct VoxelHasher(u64);

impl std::hash::Hasher for VoxelHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        let mut x = self.0 ^ value;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }
}

type VoxelHashBuilder = std::hash::BuildHasherDefault<VoxelHasher>;

/// Index (0..8) and centre of the child octant containing `point`.
fn child_of(point: &Vec3, center: &Vec3, half: f64) -> (usize, Vec3) {
    let quarter = half / 2.0;
    let mut idx = 0usize;
    let mut child_center = *center;
    if point.x >= center.x {
        idx |= 1;
        child_center.x += quarter;
    } else {
        child_center.x -= quarter;
    }
    if point.y >= center.y {
        idx |= 2;
        child_center.y += quarter;
    } else {
        child_center.y -= quarter;
    }
    if point.z >= center.z {
        idx |= 4;
        child_center.z += quarter;
    } else {
        child_center.z -= quarter;
    }
    (idx, child_center)
}

impl OctoMap {
    /// Pre-order arena walk pushing every leaf's (centre, log-odds), in the
    /// exact octant order and with the exact centre arithmetic of the old
    /// pointer-tree walk (the dedup and golden fixtures depend on both).
    /// `r` must not be [`NIL`].
    fn collect_arena(&self, r: u32, center: Vec3, half: f64, out: &mut Vec<(Vec3, f64)>) {
        if r & LEAF_BIT != 0 {
            out.push((center, self.leaf_values[(r & !LEAF_BIT) as usize]));
            return;
        }
        let quarter = half / 2.0;
        for (idx, &child) in self.nodes[r as usize].iter().enumerate() {
            if child == NIL {
                continue;
            }
            let mut c = center;
            c.x += if idx & 1 != 0 { quarter } else { -quarter };
            c.y += if idx & 2 != 0 { quarter } else { -quarter };
            c.z += if idx & 4 != 0 { quarter } else { -quarter };
            self.collect_arena(child, c, quarter, out);
        }
    }

    /// Logical equality of two subtrees: same shape, same leaf values. The
    /// arena's *physical* node order depends on creation order (serial,
    /// batched and parallel insertion create nodes in different orders), so
    /// map equality must compare the trees, not the pools.
    fn subtree_eq(&self, ra: u32, other: &OctoMap, rb: u32) -> bool {
        match (ra == NIL, rb == NIL) {
            (true, true) => return true,
            (true, false) | (false, true) => return false,
            (false, false) => {}
        }
        match (ra & LEAF_BIT != 0, rb & LEAF_BIT != 0) {
            (true, true) => {
                self.leaf_values[(ra & !LEAF_BIT) as usize]
                    == other.leaf_values[(rb & !LEAF_BIT) as usize]
            }
            (false, false) => (0..8).all(|i| {
                self.subtree_eq(
                    self.nodes[ra as usize][i],
                    other,
                    other.nodes[rb as usize][i],
                )
            }),
            _ => false,
        }
    }
}

impl PartialEq for OctoMap {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.half_extent == other.half_extent
            && self.depth == other.depth
            && self.grid == other.grid
            && self.updates == other.updates
            && self.occupied_count == other.occupied_count
            && self.index_packable == other.index_packable
            && self.occupied_blocks == other.occupied_blocks
            && self.known_leaves == other.known_leaves
            && self.known_blocks == other.known_blocks
            && self.subtree_eq(self.root, other, other.root)
    }
}

impl fmt::Display for OctoMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "octomap[res {:.2} m, {} known voxels, {} occupied]",
            self.config.resolution,
            self.known_voxel_count(),
            self.occupied_voxel_count()
        )
    }
}

/// The pre-arena pointer-chasing octree, kept verbatim as a differential
/// oracle: every node is a separate heap allocation reached through
/// `Vec<Option<Node>>` child pointers, exactly the layout the arena replaced.
/// The equivalence proptests drive [`reference::ReferenceMap`] and [`OctoMap`] with the
/// same ray sequences and compare per-point log-odds and full leaf
/// collections, so any behavioural drift in the arena descent shows up as a
/// differential failure rather than a silent golden change.
pub mod reference {
    use super::{child_of, OctoMap, OctoMapConfig};
    use mav_types::{GridSpec, Vec3};
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Node {
        Leaf { log_odds: f64 },
        Inner { children: Vec<Option<Node>> },
    }

    impl Node {
        fn new_inner() -> Self {
            Node::Inner {
                children: vec![None; 8],
            }
        }
    }

    /// Pointer-tree occupancy map with the old (pre-arena) update and
    /// collection logic, reduced to the surface the differential tests need.
    #[derive(Debug, Clone)]
    pub struct ReferenceMap {
        config: OctoMapConfig,
        half_extent: f64,
        depth: u32,
        grid: GridSpec,
        root: Option<Node>,
    }

    impl ReferenceMap {
        /// Mirrors [`OctoMap::new`]'s domain alignment so both maps agree on
        /// leaf geometry.
        pub fn new(config: OctoMapConfig, half_extent: f64) -> Self {
            assert!(half_extent > 0.0, "half extent must be positive");
            let leaves_per_axis = (2.0 * half_extent / config.resolution).ceil().max(1.0);
            let depth = (leaves_per_axis.log2().ceil() as u32).max(1);
            let aligned_half_extent = config.resolution * (1u64 << depth) as f64 / 2.0;
            let half_extent = aligned_half_extent.max(half_extent);
            ReferenceMap {
                grid: GridSpec::new(config.resolution),
                config,
                half_extent,
                depth,
                root: None,
            }
        }

        /// Integrates one sensor ray with the shared ray enumeration, so the
        /// oracle and the arena can only diverge in their *tree* logic.
        pub fn insert_ray(&mut self, origin: &Vec3, endpoint: &Vec3) {
            let (grid, config, half_extent) = (self.grid, self.config, self.half_extent);
            let clamp = config.clamp;
            OctoMap::for_each_ray_update(
                grid,
                config,
                half_extent,
                origin,
                endpoint,
                |_cell, center, delta| {
                    self.update_leaf(&center, move |log_odds| {
                        *log_odds = (*log_odds + delta).clamp(clamp.0, clamp.1);
                    });
                },
            );
        }

        /// Rebuilds the observations at a different resolution — the old
        /// `OctoMap::reresolved` verbatim (collect, then re-apply each leaf's
        /// log-odds as one clamped delta into the new tree).
        pub fn reresolved(&self, new_resolution: f64) -> ReferenceMap {
            let mut config = self.config;
            config.resolution = new_resolution;
            let clamp = config.clamp;
            let mut out = ReferenceMap::new(config, self.half_extent);
            for (center, log_odds) in self.collect() {
                out.update_leaf(&center, move |l| {
                    *l = (*l + log_odds).clamp(clamp.0, clamp.1);
                });
            }
            out
        }

        /// The leaf log-odds containing `point`, when observed.
        pub fn leaf_log_odds(&self, point: &Vec3) -> Option<f64> {
            let mut node = self.root.as_ref()?;
            let mut center = Vec3::ZERO;
            let mut half = self.half_extent;
            for _ in 0..self.depth {
                match node {
                    Node::Leaf { log_odds } => return Some(*log_odds),
                    Node::Inner { children } => {
                        let (idx, child_center) = child_of(point, &center, half);
                        node = children[idx].as_ref()?;
                        center = child_center;
                        half /= 2.0;
                    }
                }
            }
            match node {
                Node::Leaf { log_odds } => Some(*log_odds),
                Node::Inner { .. } => None,
            }
        }

        fn in_domain(&self, point: &Vec3) -> bool {
            point.x.abs() <= self.half_extent
                && point.y.abs() <= self.half_extent
                && point.z.abs() <= self.half_extent
        }

        fn update_leaf<F: FnOnce(&mut f64)>(&mut self, point: &Vec3, apply: F) {
            if !self.in_domain(point) {
                return;
            }
            let depth = self.depth;
            let half = self.half_extent;
            let root = self.root.get_or_insert_with(Node::new_inner);
            Self::update_recursive(root, point, apply, Vec3::ZERO, half, depth);
        }

        fn update_recursive<F: FnOnce(&mut f64)>(
            node: &mut Node,
            point: &Vec3,
            apply: F,
            center: Vec3,
            half: f64,
            remaining_depth: u32,
        ) {
            if remaining_depth == 0 {
                match node {
                    Node::Leaf { log_odds } => apply(log_odds),
                    Node::Inner { .. } => {
                        let mut log_odds = 0.0;
                        apply(&mut log_odds);
                        *node = Node::Leaf { log_odds };
                    }
                }
                return;
            }
            match node {
                Node::Leaf { log_odds } => {
                    // A coarse leaf observed at a shallower depth: refine it
                    // by pushing its value down (simple expansion).
                    let existing = *log_odds;
                    *node = Node::new_inner();
                    let Node::Inner { children } = node else {
                        unreachable!("node was just replaced by an inner node");
                    };
                    let (idx, child_center) = child_of(point, &center, half);
                    let child = children[idx].get_or_insert(Node::Leaf { log_odds: existing });
                    Self::update_recursive(
                        child,
                        point,
                        apply,
                        child_center,
                        half / 2.0,
                        remaining_depth - 1,
                    );
                }
                Node::Inner { children } => {
                    let (idx, child_center) = child_of(point, &center, half);
                    let child = children[idx].get_or_insert_with(|| {
                        if remaining_depth == 1 {
                            Node::Leaf { log_odds: 0.0 }
                        } else {
                            Node::new_inner()
                        }
                    });
                    Self::update_recursive(
                        child,
                        point,
                        apply,
                        child_center,
                        half / 2.0,
                        remaining_depth - 1,
                    );
                }
            }
        }

        /// Every observed leaf's (centre, log-odds), deduplicated by rounded
        /// voxel key (last wins, pre-order walk order) and sorted by
        /// coordinates — the old `collect_leaves` verbatim.
        pub fn collect(&self) -> Vec<(Vec3, f64)> {
            let mut out = Vec::new();
            if let Some(root) = &self.root {
                Self::collect_recursive(root, Vec3::ZERO, self.half_extent, &mut out);
            }
            let mut dedup: HashMap<(i64, i64, i64), (Vec3, f64)> = HashMap::new();
            for (c, l) in out {
                let key = (
                    (c.x / self.config.resolution).round() as i64,
                    (c.y / self.config.resolution).round() as i64,
                    (c.z / self.config.resolution).round() as i64,
                );
                dedup.insert(key, (c, l));
            }
            let mut v: Vec<(Vec3, f64)> = dedup.into_values().collect();
            // Same comparator-equivalence argument as `collect_leaves`:
            // (k + ½)·resolution centres are finite, never ±0.0, distinct.
            v.sort_by(|a, b| {
                a.0.x
                    .total_cmp(&b.0.x)
                    .then(a.0.y.total_cmp(&b.0.y))
                    .then(a.0.z.total_cmp(&b.0.z))
            });
            v
        }

        fn collect_recursive(node: &Node, center: Vec3, half: f64, out: &mut Vec<(Vec3, f64)>) {
            match node {
                Node::Leaf { log_odds } => out.push((center, *log_odds)),
                Node::Inner { children } => {
                    let quarter = half / 2.0;
                    for (idx, child) in children.iter().enumerate() {
                        if let Some(child) = child {
                            let mut c = center;
                            c.x += if idx & 1 != 0 { quarter } else { -quarter };
                            c.y += if idx & 2 != 0 { quarter } else { -quarter };
                            c.z += if idx & 4 != 0 { quarter } else { -quarter };
                            Self::collect_recursive(child, c, quarter, out);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_map(resolution: f64) -> OctoMap {
        OctoMap::new(OctoMapConfig::with_resolution(resolution), 32.0)
    }

    #[test]
    fn ray_insertion_marks_endpoint_occupied_and_path_free() {
        let mut map = small_map(0.5);
        let origin = Vec3::new(0.0, 0.0, 1.0);
        let hit = Vec3::new(8.0, 0.0, 1.0);
        map.insert_ray(&origin, &hit);
        assert_eq!(map.query(&hit), Occupancy::Occupied);
        assert_eq!(map.query(&Vec3::new(4.0, 0.0, 1.0)), Occupancy::Free);
        assert_eq!(map.query(&Vec3::new(0.0, 8.0, 1.0)), Occupancy::Unknown);
        assert!(map.update_count() > 0);
    }

    #[test]
    fn repeated_misses_override_a_single_hit() {
        let mut map = small_map(0.5);
        let origin = Vec3::new(0.0, 0.0, 1.0);
        let target = Vec3::new(5.0, 0.0, 1.0);
        map.insert_ray(&origin, &target);
        assert_eq!(map.query(&target), Occupancy::Occupied);
        // Now observe through that cell many times (e.g. the obstacle moved):
        // the cell must eventually flip to free.
        for _ in 0..10 {
            map.insert_ray(&origin, &Vec3::new(12.0, 0.0, 1.0));
        }
        assert_eq!(map.query(&target), Occupancy::Free);
    }

    #[test]
    fn log_odds_are_clamped() {
        let mut map = small_map(0.5);
        let origin = Vec3::new(0.0, 0.0, 1.0);
        let hit = Vec3::new(3.0, 0.0, 1.0);
        for _ in 0..100 {
            map.insert_ray(&origin, &hit);
        }
        // After saturation a handful of misses must be able to flip the state
        // back within a bounded number of updates (clamping prevents
        // unbounded certainty).
        let mut flipped = false;
        for _ in 0..20 {
            map.insert_ray(&origin, &Vec3::new(12.0, 0.0, 1.0));
            if map.query(&hit) == Occupancy::Free {
                flipped = true;
                break;
            }
        }
        assert!(flipped, "clamped cell never flipped back to free");
    }

    #[test]
    fn max_range_truncates_rays_without_marking_hits() {
        let mut map = small_map(0.5);
        let origin = Vec3::new(0.0, 0.0, 1.0);
        let far = Vec3::new(100.0, 0.0, 1.0); // beyond the 30 m max range
        map.insert_ray(&origin, &far);
        // Nothing within the domain along that ray may be occupied.
        assert_eq!(map.occupied_voxel_count(), 0);
        assert!(map.known_voxel_count() > 0);
    }

    #[test]
    fn point_cloud_insertion_builds_a_wall() {
        let mut map = small_map(0.5);
        let mut pts = Vec::new();
        for y in -10..=10 {
            for z in 0..6 {
                pts.push(Vec3::new(10.0, y as f64 * 0.5, z as f64 * 0.5));
            }
        }
        let cloud = PointCloud::new(Vec3::new(0.0, 0.0, 1.0), pts);
        map.insert_point_cloud(&cloud);
        assert!(map.occupied_voxel_count() > 50);
        assert_eq!(map.query(&Vec3::new(10.0, 0.0, 1.0)), Occupancy::Occupied);
        assert_eq!(map.query(&Vec3::new(5.0, 0.0, 1.0)), Occupancy::Free);
        assert!(!map.occupied_voxel_centers().is_empty());
        assert!(!map.free_voxel_centers().is_empty());
        assert!(map.mapped_volume() > 0.0);
    }

    #[test]
    fn inflation_blocks_near_obstacles_scaling_with_radius() {
        let mut map = small_map(0.25);
        map.insert_ray(&Vec3::new(0.0, 0.0, 1.0), &Vec3::new(5.0, 0.0, 1.0));
        let near = Vec3::new(4.6, 0.0, 1.0);
        assert!(map.is_occupied_with_inflation(&near, 0.6));
        assert!(!map.is_occupied_with_inflation(&Vec3::new(2.0, 0.0, 1.0), 0.3));
    }

    #[test]
    fn coarse_resolution_closes_narrow_openings() {
        // Build a wall with a 0.8 m opening at y ∈ [-0.4, 0.4]. At 0.15 m
        // resolution a 0.3 m-radius vehicle fits through; at 0.8 m resolution
        // the opening is swallowed by inflated voxels — the crux of Fig. 17.
        let build = |resolution: f64| {
            let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 32.0);
            let origin = Vec3::new(-5.0, 0.0, 1.0);
            for i in -40..=40 {
                let y = i as f64 * 0.1;
                if y.abs() < 0.41 {
                    continue; // the doorway
                }
                for z in [0.5, 1.0, 1.5, 2.0] {
                    map.insert_ray(&origin, &Vec3::new(3.0, y, z));
                }
            }
            map
        };
        let fine = build(0.15);
        let coarse = build(0.8);
        let through_door_a = Vec3::new(3.0, 0.0, 1.0);
        // The doorway cell itself was never hit, so at fine resolution the
        // vehicle can pass (not occupied within its 0.3 m radius)…
        assert!(!fine.is_occupied_with_inflation(&through_door_a, 0.3));
        // …but at coarse resolution the 0.8 m voxels adjacent to the door are
        // occupied and swallow the opening.
        assert!(coarse.is_occupied_with_inflation(&through_door_a, 0.3));
    }

    #[test]
    fn segment_queries_respect_walls() {
        let mut map = small_map(0.25);
        // Build a wall at x = 5 spanning y in [-3, 3].
        let origin = Vec3::new(0.0, 0.0, 1.0);
        for i in -12..=12 {
            map.insert_ray(&origin, &Vec3::new(5.0, i as f64 * 0.25, 1.0));
        }
        assert!(!map.segment_free(&Vec3::new(0.0, 0.0, 1.0), &Vec3::new(8.0, 0.0, 1.0), 0.3));
        assert!(map.segment_free(&Vec3::new(0.0, 0.0, 1.0), &Vec3::new(3.0, 0.0, 1.0), 0.3));
    }

    #[test]
    fn blocking_voxel_agrees_with_the_predicates_and_is_occupied() {
        let mut map = small_map(0.25);
        let origin = Vec3::new(0.0, 0.0, 1.0);
        for i in -12..=12 {
            map.insert_ray(&origin, &Vec3::new(5.0, i as f64 * 0.25, 1.0));
        }
        // Point query: a free point reports no voxel, a blocked one reports
        // an occupied voxel inside the inflation reach.
        let free = Vec3::new(2.0, 0.0, 1.0);
        assert!(!map.is_occupied_with_inflation(&free, 0.3));
        assert_eq!(map.blocking_voxel_with_inflation(&free, 0.3), None);
        let blocked = Vec3::new(5.0, 0.0, 1.0);
        assert!(map.is_occupied_with_inflation(&blocked, 0.3));
        let voxel = map.blocking_voxel_with_inflation(&blocked, 0.3).unwrap();
        assert_eq!(map.query(&voxel), Occupancy::Occupied);
        assert!(voxel.distance(&blocked) <= 0.3 + 0.25 * 0.87 + 1e-9);

        // Segment query: Some/None must agree with segment_free, and the
        // reported voxel must be a real occupied voxel near the wall.
        let a = Vec3::new(0.0, 0.0, 1.0);
        let b = Vec3::new(8.0, 0.0, 1.0);
        assert!(!map.segment_free(&a, &b, 0.3));
        let voxel = map.segment_blocking_voxel(&a, &b, 0.3).unwrap();
        assert_eq!(map.query(&voxel), Occupancy::Occupied);
        assert!(
            (voxel.x - 5.0).abs() < 1.0,
            "voxel far from the wall: {voxel:?}"
        );
        let c = Vec3::new(3.0, 0.0, 1.0);
        assert!(map.segment_free(&a, &c, 0.3));
        assert_eq!(map.segment_blocking_voxel(&a, &c, 0.3), None);

        // Empty map: nothing can block.
        let empty = small_map(0.25);
        assert_eq!(empty.segment_blocking_voxel(&a, &b, 0.3), None);
        assert_eq!(empty.blocking_voxel_with_inflation(&blocked, 0.3), None);
    }

    #[test]
    fn reresolving_preserves_occupancy_coarsely() {
        let mut fine = small_map(0.25);
        fine.insert_ray(&Vec3::new(0.0, 0.0, 1.0), &Vec3::new(6.0, 0.0, 1.0));
        let coarse = fine.reresolved(1.0);
        assert_eq!(coarse.resolution(), 1.0);
        assert_eq!(coarse.query(&Vec3::new(6.0, 0.0, 1.0)), Occupancy::Occupied);
        assert_ne!(coarse.query(&Vec3::new(3.0, 0.0, 1.0)), Occupancy::Occupied);
    }

    #[test]
    fn out_of_domain_queries_are_unknown() {
        let map = small_map(0.5);
        assert_eq!(map.query(&Vec3::new(1000.0, 0.0, 0.0)), Occupancy::Unknown);
        assert!(map.is_unknown(&Vec3::new(0.0, 0.0, 0.0)));
        assert!(map.domain().contains(&Vec3::ZERO));
    }

    #[test]
    fn degenerate_ray_is_ignored() {
        let mut map = small_map(0.5);
        map.insert_ray(&Vec3::new(1.0, 1.0, 1.0), &Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(map.known_voxel_count(), 0);
    }

    #[test]
    fn finer_resolution_means_more_updates_per_ray() {
        // The compute cost driver behind Fig. 18: the same ray touches more
        // voxels at finer resolution.
        let mut fine = small_map(0.15);
        let mut coarse = small_map(0.8);
        let origin = Vec3::new(0.0, 0.0, 1.0);
        let end = Vec3::new(10.0, 4.0, 1.5);
        fine.insert_ray(&origin, &end);
        coarse.insert_ray(&origin, &end);
        assert!(fine.update_count() > 3 * coarse.update_count());
    }

    #[test]
    fn batched_cloud_insertion_is_bit_identical_to_ray_by_ray() {
        // The PR 2 perf optimisation groups a scan's updates per voxel before
        // any tree traversal. The resulting map must be indistinguishable
        // from the historical ray-by-ray path: same leaf values (ordered
        // deltas under the same clamp), same update count, same queries.
        let mut points = Vec::new();
        for y in -14..=14 {
            for z in 0..5 {
                points.push(Vec3::new(11.0, y as f64 * 0.4, z as f64 * 0.45));
            }
        }
        // Include a beyond-max-range ray and a degenerate one.
        points.push(Vec3::new(200.0, 0.0, 1.0));
        points.push(Vec3::new(0.0, 0.0, 1.0));
        let origin = Vec3::new(0.0, 0.0, 1.0);
        let cloud = PointCloud::new(origin, points.clone());

        let mut batched = small_map(0.3);
        batched.insert_point_cloud_batched(&cloud);
        let mut serial = small_map(0.3);
        for p in &points {
            serial.insert_ray(&origin, p);
        }
        assert_eq!(batched.update_count(), serial.update_count());
        assert_eq!(batched, serial, "batched insertion changed the map");
        // And the public (adaptively gated) entry point agrees with both.
        let mut gated = small_map(0.3);
        gated.insert_point_cloud(&cloud);
        assert_eq!(gated, serial, "gated insertion changed the map");
    }

    #[test]
    fn unpackable_domain_falls_back_to_reference_queries() {
        // A multi-km domain at mm resolution exceeds the 21-bit voxel-key
        // packing: the occupied-voxel index must disable itself and every
        // query keep answering (identically) via the tree.
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.001), 1500.0);
        let origin = Vec3::new(0.0, 0.0, 0.0105);
        let hit = Vec3::new(0.05, 0.0, 0.0105);
        map.insert_ray(&origin, &hit);
        assert_eq!(map.query(&hit), Occupancy::Occupied);
        assert!(map.is_occupied_with_inflation(&hit, 0.002));
        assert_eq!(
            map.is_occupied_with_inflation(&hit, 0.002),
            map.is_occupied_with_inflation_reference(&hit, 0.002)
        );
        assert!(!map.segment_free(&origin, &hit, 0.001));
        assert_eq!(map.occupied_voxel_count(), 1);
        assert_eq!(map.known_voxel_count(), map.known_voxel_count_scan());
    }

    #[test]
    #[should_panic]
    fn zero_resolution_rejected() {
        let _ = OctoMapConfig::with_resolution(0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", small_map(0.5)).is_empty());
    }

    /// Differential properties pinning the arena rewrite: the flat-`Vec`
    /// octree, the incremental free-voxel index and the parallel insertion
    /// path must all be *exact* replacements — bit-identical log-odds, leaf
    /// sets and counters against the pointer-tree oracle and the serial /
    /// tree-walk references.
    mod equivalence {
        use super::super::reference::ReferenceMap;
        use super::*;
        use proptest::prelude::*;

        /// Dyadic and non-dyadic resolutions, fine and coarse (the paper's
        /// 0.15 m / 0.80 m case-study endpoints included).
        const RESOLUTIONS: [f64; 5] = [0.15, 0.25, 0.3, 0.5, 0.8];

        fn arb_point(extent: f64) -> impl Strategy<Value = Vec3> {
            (-extent..extent, -extent..extent, 0.0..6.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
        }

        /// Builds the arena map and the pointer-tree oracle from the same
        /// ray sequence.
        fn paired_maps(res_idx: usize, rays: &[Vec3]) -> (OctoMap, ReferenceMap) {
            let resolution = RESOLUTIONS[res_idx % RESOLUTIONS.len()];
            let config = OctoMapConfig::with_resolution(resolution);
            let mut arena = OctoMap::new(config, 24.0);
            let mut tree = ReferenceMap::new(config, 24.0);
            let origin = Vec3::new(0.0, 0.0, 1.5);
            for endpoint in rays {
                arena.insert_ray(&origin, endpoint);
                tree.insert_ray(&origin, endpoint);
            }
            (arena, tree)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The arena descent produces the same leaves (same centres, same
            /// log-odds bits) and answers point probes exactly like the
            /// pointer tree, including through a reresolve → insert chain.
            #[test]
            fn arena_matches_reference_tree(
                res_idx in 0usize..RESOLUTIONS.len(),
                rays in proptest::collection::vec(arb_point(20.0), 1..32),
                more_rays in proptest::collection::vec(arb_point(20.0), 1..12),
                queries in proptest::collection::vec(arb_point(24.0), 1..16),
                new_res_idx in 0usize..RESOLUTIONS.len(),
            ) {
                let (mut arena, mut tree) = paired_maps(res_idx, &rays);
                prop_assert_eq!(arena.collect_leaves(), tree.collect());
                for q in &queries {
                    prop_assert_eq!(arena.leaf_log_odds(q), tree.leaf_log_odds(q));
                }
                // Survives resolution switching (the dynamic-resolution
                // policy) and further insertion on the rebuilt maps.
                let new_res = RESOLUTIONS[new_res_idx % RESOLUTIONS.len()];
                arena = arena.reresolved(new_res);
                tree = tree.reresolved(new_res);
                let origin = Vec3::new(0.0, 0.0, 1.5);
                for endpoint in &more_rays {
                    arena.insert_ray(&origin, endpoint);
                    tree.insert_ray(&origin, endpoint);
                }
                prop_assert_eq!(arena.collect_leaves(), tree.collect());
                for q in &queries {
                    prop_assert_eq!(arena.leaf_log_odds(q), tree.leaf_log_odds(q));
                }
            }

            /// The incremental free-voxel index returns bit-identical centres
            /// (same order, same f64 bits) as the full-tree-walk scan, and
            /// the O(1) counters match their scans, through insertion and
            /// reresolution.
            #[test]
            fn free_voxel_index_matches_tree_walk(
                res_idx in 0usize..RESOLUTIONS.len(),
                rays in proptest::collection::vec(arb_point(20.0), 1..32),
                new_res_idx in 0usize..RESOLUTIONS.len(),
            ) {
                let (mut arena, _) = paired_maps(res_idx, &rays);
                // The occupied counter may overcount the deduplicated scan
                // at non-dyadic resolutions (rounded-key collisions merge
                // scan leaves) — the seed suite pins "never undercounts",
                // so that is the exact relation asserted here too.
                prop_assert_eq!(arena.free_voxel_centers(), arena.free_voxel_centers_scan());
                prop_assert_eq!(arena.known_voxel_count(), arena.known_voxel_count_scan());
                prop_assert!(arena.occupied_voxel_count() >= arena.occupied_voxel_count_scan());
                let new_res = RESOLUTIONS[new_res_idx % RESOLUTIONS.len()];
                arena = arena.reresolved(new_res);
                prop_assert_eq!(arena.free_voxel_centers(), arena.free_voxel_centers_scan());
                prop_assert_eq!(arena.known_voxel_count(), arena.known_voxel_count_scan());
                prop_assert!(arena.occupied_voxel_count() >= arena.occupied_voxel_count_scan());
            }

            /// The known-block-bitmask frontier predicate agrees with the
            /// reference six-probe `is_unknown` loop on every known voxel
            /// centre — the exact call sites frontier extraction probes.
            #[test]
            fn unknown_neighbor_index_matches_probe_loop(
                res_idx in 0usize..RESOLUTIONS.len(),
                rays in proptest::collection::vec(arb_point(20.0), 1..32),
            ) {
                let (arena, _) = paired_maps(res_idx, &rays);
                let r = arena.resolution();
                let offsets = [
                    Vec3::new(r, 0.0, 0.0),
                    Vec3::new(-r, 0.0, 0.0),
                    Vec3::new(0.0, r, 0.0),
                    Vec3::new(0.0, -r, 0.0),
                    Vec3::new(0.0, 0.0, r),
                    Vec3::new(0.0, 0.0, -r),
                ];
                for center in arena
                    .free_voxel_centers()
                    .into_iter()
                    .chain(arena.occupied_voxel_centers())
                {
                    let reference = offsets.iter().any(|d| arena.is_unknown(&(center + *d)));
                    prop_assert_eq!(
                        arena.has_unknown_neighbor6(&center),
                        reference,
                        "diverged at {}",
                        center
                    );
                }
            }

            /// The block-bitmask-backed `occupied_voxel_centers` agrees with
            /// the tree walk bit-for-bit at dyadic resolutions (where leaf
            /// centres are exactly representable grid centres).
            #[test]
            fn occupied_centers_match_tree_walk_at_dyadic_resolution(
                dyadic in 0usize..2,
                rays in proptest::collection::vec(arb_point(20.0), 1..32),
            ) {
                let resolution = [0.25, 0.5][dyadic];
                let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 24.0);
                let origin = Vec3::new(0.0, 0.0, 1.5);
                for endpoint in &rays {
                    map.insert_ray(&origin, endpoint);
                }
                prop_assert_eq!(map.occupied_voxel_centers(), map.occupied_voxel_centers_scan());
            }

            /// A cleared (or reshaped) map is bit-identical to a fresh one
            /// under any subsequent ray sequence: same logical tree, same
            /// update/occupancy counters, same free-voxel index contents —
            /// the contract the episode-reuse layer rests on.
            #[test]
            fn clear_then_reinsert_matches_fresh_map(
                res_idx in 0usize..RESOLUTIONS.len(),
                warmup_rays in proptest::collection::vec(arb_point(20.0), 1..32),
                rays in proptest::collection::vec(arb_point(20.0), 1..32),
                new_res_idx in 0usize..RESOLUTIONS.len(),
            ) {
                let origin = Vec3::new(0.0, 0.0, 1.5);
                // Dirty a map with an unrelated ray sequence, then clear it.
                let (mut reused, _) = paired_maps(res_idx, &warmup_rays);
                reused.clear();
                let config = OctoMapConfig::with_resolution(RESOLUTIONS[res_idx % RESOLUTIONS.len()]);
                let mut fresh = OctoMap::new(config, 24.0);
                for endpoint in &rays {
                    reused.insert_ray(&origin, endpoint);
                    fresh.insert_ray(&origin, endpoint);
                }
                prop_assert_eq!(&reused, &fresh);
                prop_assert_eq!(reused.update_count(), fresh.update_count());
                prop_assert_eq!(reused.known_voxel_count(), fresh.known_voxel_count());
                prop_assert_eq!(reused.occupied_voxel_count(), fresh.occupied_voxel_count());
                prop_assert_eq!(reused.free_voxel_centers(), fresh.free_voxel_centers());
                prop_assert_eq!(reused.occupied_voxel_centers(), fresh.occupied_voxel_centers());
                // Reshape to a different geometry: reset must equal new.
                let new_config =
                    OctoMapConfig::with_resolution(RESOLUTIONS[new_res_idx % RESOLUTIONS.len()]);
                reused.reset(new_config, 30.0);
                let mut fresh = OctoMap::new(new_config, 30.0);
                for endpoint in &rays {
                    reused.insert_ray(&origin, endpoint);
                    fresh.insert_ray(&origin, endpoint);
                }
                prop_assert_eq!(&reused, &fresh);
                prop_assert_eq!(reused.update_count(), fresh.update_count());
                prop_assert_eq!(reused.free_voxel_centers(), fresh.free_voxel_centers());
            }

            /// Parallel scan insertion is bit-identical to the serial path at
            /// every thread count: same logical tree, same indexes, same
            /// counters, same free-voxel centres.
            #[test]
            fn parallel_insertion_bit_identical_across_thread_counts(
                res_idx in 0usize..RESOLUTIONS.len(),
                points in proptest::collection::vec(arb_point(20.0), 1..48),
            ) {
                let resolution = RESOLUTIONS[res_idx % RESOLUTIONS.len()];
                let config = OctoMapConfig::with_resolution(resolution);
                let cloud = PointCloud::new(Vec3::new(0.0, 0.0, 1.5), points);
                let mut serial = OctoMap::new(config, 24.0);
                serial.insert_point_cloud(&cloud);
                for threads in [1usize, 2, 3, 8] {
                    let mut parallel = OctoMap::new(config, 24.0);
                    parallel.insert_point_cloud_parallel(&cloud, threads);
                    prop_assert_eq!(&parallel, &serial, "diverged at {} threads", threads);
                    prop_assert_eq!(parallel.update_count(), serial.update_count());
                    prop_assert_eq!(parallel.free_voxel_centers(), serial.free_voxel_centers());
                }
            }
        }
    }
}
