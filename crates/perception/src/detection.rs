//! Object detection kernel (YOLO / HOG substitute).
//!
//! The original MAVBench ships YOLO and OpenCV HOG/Haar people detectors. In
//! this reproduction the detector operates on the simulated scene directly:
//! person-like obstacles within the camera's field of view and line of sight
//! are reported as detections, with a recall model that degrades with distance
//! (and differs per detector family), mirroring how detection precision falls
//! off in the paper's photorealism discussion.

use mav_env::{ObstacleClass, World};
use mav_types::{Pose, Vec3};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which detector implementation is plugged in (the paper's "plug and play"
/// kernel knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorKind {
    /// YOLO-class CNN detector: long range, high recall, expensive.
    Yolo,
    /// HOG people detector: shorter range, lower recall, cheaper.
    Hog,
}

impl DetectorKind {
    /// Maximum reliable detection range, metres.
    pub fn max_range(&self) -> f64 {
        match self {
            DetectorKind::Yolo => 40.0,
            DetectorKind::Hog => 20.0,
        }
    }

    /// Recall at point-blank range.
    pub fn base_recall(&self) -> f64 {
        match self {
            DetectorKind::Yolo => 0.95,
            DetectorKind::Hog => 0.80,
        }
    }
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorKind::Yolo => f.write_str("yolo"),
            DetectorKind::Hog => f.write_str("hog"),
        }
    }
}

/// One detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// World-frame position of the detected object's centre.
    pub position: Vec3,
    /// Detection confidence in `[0, 1]`.
    pub confidence: f64,
    /// Horizontal offset of the detection from the image centre, normalised to
    /// `[-1, 1]` (the aerial-photography error metric measures the distance of
    /// the target's bounding box from the frame centre).
    pub image_offset: f64,
    /// Class of the detected obstacle.
    pub class: ObstacleClass,
}

/// Configuration of the object detection kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Which detector family is used.
    pub kind: DetectorKind,
    /// Horizontal field of view, radians.
    pub fov_horizontal: f64,
    /// RNG seed for the recall model.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            kind: DetectorKind::Yolo,
            fov_horizontal: std::f64::consts::FRAC_PI_2,
            seed: 17,
        }
    }
}

/// The object detector.
///
/// # Example
///
/// ```
/// use mav_env::EnvironmentConfig;
/// use mav_perception::{DetectorConfig, ObjectDetector};
/// use mav_types::{Pose, Vec3};
///
/// let world = EnvironmentConfig::disaster_site().with_seed(3).generate();
/// let mut detector = ObjectDetector::new(DetectorConfig::default());
/// let _detections = detector.detect(&world, &Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectDetector {
    config: DetectorConfig,
    #[serde(skip)]
    frame: u64,
}

impl ObjectDetector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        ObjectDetector { config, frame: 0 }
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs detection from `pose` in `world`, returning every person-like
    /// object detected this frame.
    pub fn detect(&mut self, world: &World, pose: &Pose) -> Vec<Detection> {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.config.seed ^ self.frame.wrapping_mul(0xA076_1D64_78BD_642F),
        );
        self.frame += 1;
        let mut detections = Vec::new();
        for obstacle in world.obstacles() {
            if !obstacle.class.is_person_like() {
                continue;
            }
            let target = obstacle.center();
            let to_target = target - pose.position;
            let range = to_target.norm();
            if range > self.config.kind.max_range() || range < 0.5 {
                continue;
            }
            // Field-of-view check on the horizontal bearing.
            let bearing = mav_types::pose::wrap_angle(to_target.heading() - pose.yaw);
            if bearing.abs() > self.config.fov_horizontal / 2.0 {
                continue;
            }
            // Line-of-sight: the first surface the ray hits must belong to the
            // target obstacle (or be within half a metre of it).
            let visible = match world.raycast(&pose.position, &to_target, range + 1.0) {
                Some(hit) => {
                    hit.obstacle == Some(obstacle.id) || (hit.distance - range).abs() < 0.75
                }
                None => true,
            };
            if !visible {
                continue;
            }
            // Recall falls off linearly with distance.
            let recall = self.config.kind.base_recall()
                * (1.0 - range / self.config.kind.max_range()).clamp(0.05, 1.0);
            if rng.gen_range(0.0..1.0) > recall {
                continue;
            }
            let confidence = (recall + rng.gen_range(-0.05f64..0.05)).clamp(0.1, 1.0);
            detections.push(Detection {
                position: target,
                confidence,
                image_offset: (bearing / (self.config.fov_horizontal / 2.0)).clamp(-1.0, 1.0),
                class: obstacle.class,
            });
        }
        detections
    }

    /// Convenience: the highest-confidence detection of the given class, if
    /// any.
    pub fn detect_class(
        &mut self,
        world: &World,
        pose: &Pose,
        class: ObstacleClass,
    ) -> Option<Detection> {
        self.detect(world, pose)
            .into_iter()
            .filter(|d| d.class == class)
            // `total_cmp` ≡ the historical `partial_cmp().expect()`:
            // confidences are finite and strictly positive, so the NaN/±0.0
            // cases where the comparators differ cannot occur.
            .max_by(|a, b| a.confidence.total_cmp(&b.confidence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_env::{Obstacle, ObstacleId};
    use mav_types::Aabb;

    fn world_with_person_at(pos: Vec3) -> World {
        let mut w = World::empty(Aabb::new(
            Vec3::new(-60.0, -60.0, 0.0),
            Vec3::new(60.0, 60.0, 30.0),
        ));
        w.add_obstacle(Obstacle::fixed(
            ObstacleId(0),
            Aabb::from_center_size(pos, Vec3::new(0.6, 0.6, 1.8)),
            ObstacleClass::Person,
        ));
        w
    }

    #[test]
    fn detects_visible_person_in_front() {
        let world = world_with_person_at(Vec3::new(8.0, 0.0, 0.9));
        let mut det = ObjectDetector::new(DetectorConfig::default());
        // Run several frames: with ~75-95 % recall at 8 m the person must be
        // found within a few frames.
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.5), 0.0);
        let mut found = false;
        for _ in 0..10 {
            if det
                .detect_class(&world, &pose, ObstacleClass::Person)
                .is_some()
            {
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn ignores_person_behind_the_camera() {
        let world = world_with_person_at(Vec3::new(-8.0, 0.0, 0.9));
        let mut det = ObjectDetector::new(DetectorConfig::default());
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.5), 0.0);
        for _ in 0..20 {
            assert!(det.detect(&world, &pose).is_empty());
        }
    }

    #[test]
    fn occluded_person_is_not_detected() {
        let mut world = world_with_person_at(Vec3::new(12.0, 0.0, 0.9));
        // Wall between the camera and the person.
        world.add_box(
            Aabb::from_center_size(Vec3::new(6.0, 0.0, 2.0), Vec3::new(0.5, 10.0, 4.0)),
            ObstacleClass::Structure,
        );
        let mut det = ObjectDetector::new(DetectorConfig::default());
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.5), 0.0);
        for _ in 0..20 {
            assert!(det.detect(&world, &pose).is_empty());
        }
    }

    #[test]
    fn out_of_range_person_is_not_detected() {
        let world = world_with_person_at(Vec3::new(55.0, 0.0, 0.9));
        let mut det = ObjectDetector::new(DetectorConfig {
            kind: DetectorKind::Hog,
            ..Default::default()
        });
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.5), 0.0);
        for _ in 0..20 {
            assert!(det.detect(&world, &pose).is_empty());
        }
    }

    #[test]
    fn yolo_outranges_hog() {
        // Person at 30 m: in range of YOLO, out of range of HOG.
        let world = world_with_person_at(Vec3::new(30.0, 0.0, 0.9));
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.5), 0.0);
        let mut yolo = ObjectDetector::new(DetectorConfig::default());
        let mut hog = ObjectDetector::new(DetectorConfig {
            kind: DetectorKind::Hog,
            ..Default::default()
        });
        let mut yolo_found = false;
        for _ in 0..40 {
            if !yolo.detect(&world, &pose).is_empty() {
                yolo_found = true;
            }
            assert!(hog.detect(&world, &pose).is_empty());
        }
        assert!(yolo_found);
        assert!(DetectorKind::Yolo.max_range() > DetectorKind::Hog.max_range());
        assert!(!format!("{}", DetectorKind::Yolo).is_empty());
    }

    #[test]
    fn image_offset_reflects_bearing() {
        let world = world_with_person_at(Vec3::new(8.0, 3.0, 0.9));
        let mut det = ObjectDetector::new(DetectorConfig::default());
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.5), 0.0);
        for _ in 0..20 {
            if let Some(d) = det.detect_class(&world, &pose, ObstacleClass::Person) {
                assert!(
                    d.image_offset > 0.0,
                    "target left of centre should have positive offset"
                );
                assert!(d.confidence > 0.0 && d.confidence <= 1.0);
                return;
            }
        }
        panic!("person never detected");
    }
}
