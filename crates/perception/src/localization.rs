//! Localization kernels: GPS and a visual-SLAM model.
//!
//! The paper's Fig. 8b microbenchmark drives ORB-SLAM2 around a 25 m circle
//! while artificially throttling its frame rate, and finds that for a bounded
//! localization-failure rate (20 %) the permissible maximum velocity grows
//! with the SLAM frame rate. This module models that relationship directly:
//! the per-frame failure probability grows with the distance the vehicle
//! travels between processed frames (velocity / FPS), so higher compute (FPS)
//! permits higher speed at the same failure budget.

use mav_sensors::{Gps, GpsFix};
use mav_types::{Pose, SimTime, Vec3};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of one localization update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalizationResult {
    /// Estimated pose.
    pub pose: Pose,
    /// `false` when the localizer has lost track of the vehicle.
    pub healthy: bool,
}

/// A source of pose estimates.
pub trait Localizer {
    /// Produces a pose estimate given ground truth (the simulator is the
    /// oracle; real localizers would fuse sensor data).
    fn localize(&mut self, truth: &Pose, velocity: &Vec3, time: SimTime) -> LocalizationResult;

    /// Number of localization failures so far.
    fn failure_count(&self) -> u32;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// GPS-based localizer: applies the GPS noise model, never fails.
#[derive(Debug, Clone, Default)]
pub struct GpsLocalizer {
    gps: Gps,
}

impl GpsLocalizer {
    /// Creates a GPS localizer.
    pub fn new(gps: Gps) -> Self {
        GpsLocalizer { gps }
    }

    /// The most recent fix produced, if any (exposed for tests).
    pub fn fix(&mut self, truth: &Pose, time: SimTime) -> GpsFix {
        self.gps.fix(truth, time)
    }
}

impl Localizer for GpsLocalizer {
    fn localize(&mut self, truth: &Pose, _velocity: &Vec3, time: SimTime) -> LocalizationResult {
        let fix = self.gps.fix(truth, time);
        LocalizationResult {
            pose: Pose::new(fix.position, truth.yaw),
            healthy: true,
        }
    }

    fn failure_count(&self) -> u32 {
        0
    }

    fn name(&self) -> &'static str {
        "gps"
    }
}

/// Configuration of the visual SLAM model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlamConfig {
    /// Frames per second the SLAM front end can process — the compute knob.
    pub fps: f64,
    /// Metres the vehicle may travel between processed frames before the
    /// failure probability starts rising.
    pub tolerated_motion_per_frame: f64,
    /// Slope of the failure probability beyond the tolerated motion,
    /// per metre of excess inter-frame motion.
    pub failure_slope: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SlamConfig {
    /// A SLAM front end processing `fps` frames per second.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not strictly positive.
    pub fn with_fps(fps: f64) -> Self {
        assert!(fps > 0.0, "fps must be positive, got {fps}");
        SlamConfig {
            fps,
            tolerated_motion_per_frame: 0.35,
            failure_slope: 0.55,
            seed: 29,
        }
    }

    /// Probability of a localization failure on one processed frame at the
    /// given speed (m/s).
    pub fn failure_probability(&self, speed: f64) -> f64 {
        let motion_per_frame = speed / self.fps;
        ((motion_per_frame - self.tolerated_motion_per_frame) * self.failure_slope).clamp(0.0, 1.0)
    }

    /// The largest speed whose per-frame failure probability stays at or below
    /// `budget` — the analytic form of the paper's Fig. 8b sweep.
    pub fn max_velocity_for_failure_budget(&self, budget: f64) -> f64 {
        let budget = budget.clamp(0.0, 1.0);
        (self.tolerated_motion_per_frame + budget / self.failure_slope) * self.fps
    }
}

/// The visual SLAM localizer model (ORB-SLAM2 / VINS-Mono substitute).
///
/// # Example
///
/// ```
/// use mav_perception::SlamConfig;
///
/// let slow = SlamConfig::with_fps(2.0);
/// let fast = SlamConfig::with_fps(8.0);
/// // More compute (FPS) permits a higher speed at the same 20 % failure budget.
/// assert!(fast.max_velocity_for_failure_budget(0.2) > slow.max_velocity_for_failure_budget(0.2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisualSlam {
    config: SlamConfig,
    failures: u32,
    frames: u64,
    lost: bool,
    /// When lost, the number of consecutive healthy-conditions frames needed
    /// to re-localize.
    relocalization_frames: u32,
    relocalization_progress: u32,
}

impl VisualSlam {
    /// Creates a SLAM localizer.
    pub fn new(config: SlamConfig) -> Self {
        VisualSlam {
            config,
            failures: 0,
            frames: 0,
            lost: false,
            relocalization_frames: 5,
            relocalization_progress: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SlamConfig {
        &self.config
    }

    /// Returns `true` while the SLAM system has lost track.
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// Number of frames processed.
    pub fn frames_processed(&self) -> u64 {
        self.frames
    }

    /// Observed failure rate (failures per processed frame).
    pub fn failure_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.failures as f64 / self.frames as f64
        }
    }
}

impl Localizer for VisualSlam {
    fn localize(&mut self, truth: &Pose, velocity: &Vec3, _time: SimTime) -> LocalizationResult {
        self.frames += 1;
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.config.seed ^ self.frames.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let speed = velocity.norm();
        let p_fail = self.config.failure_probability(speed);
        if self.lost {
            // Re-localization requires several consecutive low-motion frames.
            if p_fail < 0.05 {
                self.relocalization_progress += 1;
                if self.relocalization_progress >= self.relocalization_frames {
                    self.lost = false;
                    self.relocalization_progress = 0;
                }
            } else {
                self.relocalization_progress = 0;
            }
        } else if rng.gen_range(0.0..1.0) < p_fail {
            self.failures += 1;
            self.lost = true;
            self.relocalization_progress = 0;
        }
        LocalizationResult {
            pose: *truth,
            healthy: !self.lost,
        }
    }

    fn failure_count(&self) -> u32 {
        self.failures
    }

    fn name(&self) -> &'static str {
        "visual-slam"
    }
}

impl fmt::Display for VisualSlam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slam[{:.1} fps, {} failures / {} frames]",
            self.config.fps, self.failures, self.frames
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_sensors::GpsNoiseModel;

    #[test]
    fn gps_localizer_tracks_truth_and_never_fails() {
        let mut loc = GpsLocalizer::new(Gps::new(GpsNoiseModel::perfect()));
        let truth = Pose::new(Vec3::new(3.0, 4.0, 5.0), 0.3);
        let r = loc.localize(&truth, &Vec3::new(5.0, 0.0, 0.0), SimTime::ZERO);
        assert!(r.healthy);
        assert_eq!(r.pose.position, truth.position);
        assert_eq!(loc.failure_count(), 0);
        assert_eq!(loc.name(), "gps");
        let fix = loc.fix(&truth, SimTime::ZERO);
        assert_eq!(fix.position, truth.position);
    }

    #[test]
    fn failure_probability_grows_with_speed_and_shrinks_with_fps() {
        let slow_compute = SlamConfig::with_fps(2.0);
        let fast_compute = SlamConfig::with_fps(10.0);
        assert!(slow_compute.failure_probability(5.0) > fast_compute.failure_probability(5.0));
        assert!(slow_compute.failure_probability(8.0) > slow_compute.failure_probability(2.0));
        assert_eq!(fast_compute.failure_probability(0.5), 0.0);
    }

    #[test]
    fn max_velocity_increases_with_fps() {
        // The shape of Fig. 8b: max velocity under a 20 % failure budget grows
        // monotonically with the SLAM frame rate.
        let mut last = 0.0;
        for fps in [1.0, 2.0, 4.0, 6.0, 8.0] {
            let v = SlamConfig::with_fps(fps).max_velocity_for_failure_budget(0.2);
            assert!(v > last, "fps {fps} gave {v} which is not above {last}");
            last = v;
        }
        // And the budgets are consistent with the probability model.
        let cfg = SlamConfig::with_fps(4.0);
        let v = cfg.max_velocity_for_failure_budget(0.2);
        assert!((cfg.failure_probability(v) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn slam_fails_when_flying_too_fast_and_recovers_when_slow() {
        let mut slam = VisualSlam::new(SlamConfig::with_fps(2.0));
        let truth = Pose::origin();
        // Fly much faster than the 2 fps front end can tolerate.
        let mut failed = false;
        for _ in 0..200 {
            let r = slam.localize(&truth, &Vec3::new(12.0, 0.0, 0.0), SimTime::ZERO);
            if !r.healthy {
                failed = true;
                break;
            }
        }
        assert!(failed, "slam never failed at 12 m/s on a 2 fps front end");
        assert!(slam.is_lost());
        assert!(slam.failure_count() >= 1);
        // Slow down: after a few quiet frames the system re-localizes.
        let mut recovered = false;
        for _ in 0..50 {
            let r = slam.localize(&truth, &Vec3::new(0.2, 0.0, 0.0), SimTime::ZERO);
            if r.healthy {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "slam never re-localized at low speed");
        assert!(slam.frames_processed() > 0);
        assert!(slam.failure_rate() > 0.0);
    }

    #[test]
    fn high_fps_slam_survives_high_speed() {
        let mut slam = VisualSlam::new(SlamConfig::with_fps(30.0));
        let truth = Pose::origin();
        for _ in 0..500 {
            let r = slam.localize(&truth, &Vec3::new(8.0, 0.0, 0.0), SimTime::ZERO);
            assert!(r.healthy);
        }
        assert_eq!(slam.failure_count(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_fps_rejected() {
        let _ = SlamConfig::with_fps(0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", VisualSlam::new(SlamConfig::with_fps(5.0))).is_empty());
    }
}
