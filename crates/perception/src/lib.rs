//! Perception kernels for MAVBench-RS: point-cloud generation, the OctoMap
//! probabilistic occupancy octree, object detection, target tracking and
//! localization (GPS and a visual-SLAM model).
//!
//! These are the Rust substitutes for the kernels the original MAVBench wires
//! together from OctoMap, YOLO/HOG, KCF and ORB-SLAM2/VINS-Mono. Each kernel
//! exposes the knobs the paper's case studies turn: OctoMap resolution, the
//! detector family, depth-noise susceptibility and the SLAM frame rate.
//!
//! # Example
//!
//! ```
//! use mav_perception::{OctoMap, OctoMapConfig, Occupancy, PointCloud};
//! use mav_types::Vec3;
//!
//! let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 32.0);
//! let cloud = PointCloud::new(Vec3::new(0.0, 0.0, 1.0), vec![Vec3::new(6.0, 0.0, 1.0)]);
//! map.insert_point_cloud(&cloud);
//! assert_eq!(map.query(&Vec3::new(6.0, 0.0, 1.0)), Occupancy::Occupied);
//! ```

#![warn(missing_docs)]

pub mod detection;
pub mod localization;
pub mod octomap;
pub mod pointcloud;
pub mod tracking;

pub use detection::{Detection, DetectorConfig, DetectorKind, ObjectDetector};
pub use localization::{GpsLocalizer, LocalizationResult, Localizer, SlamConfig, VisualSlam};
pub use octomap::{Occupancy, OctoMap, OctoMapConfig};
pub use pointcloud::{DownsampleScratch, PointCloud};
pub use tracking::{
    MultiTargetTracker, MultiTrackerConfig, TargetTracker, TrackState, TrackerConfig,
};
