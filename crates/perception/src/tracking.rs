//! Target tracking kernel (KCF substitute).
//!
//! Aerial Photography pairs its detector with a correlation-filter tracker so
//! that the expensive detector can run at a low rate while the tracker keeps
//! the subject's position estimate fresh between detections. Here the tracker
//! is an alpha–beta filter over the detected position with lost-track
//! handling, which preserves the latency/accuracy interplay the workload
//! exercises.

use crate::detection::Detection;
use mav_types::{Aabb, PointGrid, SimDuration, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// State of the tracked target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackState {
    /// Estimated world-frame position of the target.
    pub position: Vec3,
    /// Estimated world-frame velocity of the target.
    pub velocity: Vec3,
    /// Number of consecutive updates without a detection.
    pub frames_since_detection: u32,
}

impl TrackState {
    /// Returns `true` while the track is considered reliable.
    pub fn is_live(&self, max_missed: u32) -> bool {
        self.frames_since_detection <= max_missed
    }
}

/// Configuration of the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Position blend factor for new detections (alpha).
    pub alpha: f64,
    /// Velocity blend factor (beta).
    pub beta: f64,
    /// After this many consecutive missed frames the track is dropped.
    pub max_missed_frames: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            alpha: 0.6,
            beta: 0.3,
            max_missed_frames: 15,
        }
    }
}

/// The alpha–beta target tracker.
///
/// # Example
///
/// ```
/// use mav_perception::{TargetTracker, TrackerConfig};
/// use mav_types::{SimDuration, Vec3};
///
/// let mut tracker = TargetTracker::new(TrackerConfig::default());
/// // Coast with no detections: no track yet.
/// assert!(tracker.predict(SimDuration::from_millis(100.0)).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TargetTracker {
    config: TrackerConfig,
    state: Option<TrackState>,
}

impl TargetTracker {
    /// Creates a tracker with no active track.
    pub fn new(config: TrackerConfig) -> Self {
        TargetTracker {
            config,
            state: None,
        }
    }

    /// The current track, if one is live.
    pub fn track(&self) -> Option<&TrackState> {
        self.state.as_ref()
    }

    /// Returns `true` when a live track exists.
    pub fn has_track(&self) -> bool {
        self.state
            .as_ref()
            .is_some_and(|s| s.is_live(self.config.max_missed_frames))
    }

    /// Integrates a detector result. `None` means the detector ran but found
    /// nothing this frame.
    pub fn update(&mut self, detection: Option<&Detection>, dt: SimDuration) -> Option<TrackState> {
        match (self.state.as_mut(), detection) {
            (None, None) => {}
            (None, Some(d)) => {
                self.state = Some(TrackState {
                    position: d.position,
                    velocity: Vec3::ZERO,
                    frames_since_detection: 0,
                });
            }
            (Some(s), Some(d)) => {
                let dt_s = dt.as_secs().max(1e-3);
                let predicted = s.position + s.velocity * dt_s;
                let residual = d.position - predicted;
                s.position = predicted + residual * self.config.alpha;
                s.velocity += residual * (self.config.beta / dt_s);
                s.frames_since_detection = 0;
            }
            (Some(s), None) => {
                // Coast on the constant-velocity model.
                let dt_s = dt.as_secs().max(1e-3);
                s.position += s.velocity * dt_s;
                s.frames_since_detection += 1;
                if !s.is_live(self.config.max_missed_frames) {
                    self.state = None;
                }
            }
        }
        self.state
    }

    /// Coasts the track forward without consuming a detection (used when the
    /// tracker runs at a higher rate than the detector).
    pub fn predict(&mut self, dt: SimDuration) -> Option<TrackState> {
        self.update(None, dt)
    }

    /// Drops the current track.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

/// Configuration of the multi-target tracker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiTrackerConfig {
    /// Per-track alpha–beta filter parameters.
    pub base: TrackerConfig,
    /// A detection farther than this from every predicted track position
    /// spawns a new track instead of updating one.
    pub gate_radius: f64,
}

impl Default for MultiTrackerConfig {
    fn default() -> Self {
        MultiTrackerConfig {
            base: TrackerConfig::default(),
            gate_radius: 4.0,
        }
    }
}

/// Multiple [`TrackState`]s maintained over frames of detections: each frame
/// the tracks are coasted forward, detections are associated to the nearest
/// unclaimed predicted position within `gate_radius`, matched tracks take an
/// alpha–beta update, unmatched detections spawn new tracks, and stale tracks
/// are dropped.
///
/// Association goes through the [`PointGrid`] radius index, so a frame of
/// `m` detections against `n` tracks costs near O(n + m) instead of the
/// O(n·m) all-pairs scan. The index is exact (candidates are a superset,
/// re-tested with the scan's own distance predicate and tie-break), so the
/// assignment is identical to the reference linear scan — pinned by
/// `association_matches_reference`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTargetTracker {
    config: MultiTrackerConfig,
    tracks: Vec<TrackState>,
}

impl MultiTargetTracker {
    /// Creates a tracker with no tracks.
    pub fn new(config: MultiTrackerConfig) -> Self {
        MultiTargetTracker {
            config,
            tracks: Vec::new(),
        }
    }

    /// The live tracks, oldest first.
    pub fn tracks(&self) -> &[TrackState] {
        &self.tracks
    }

    /// Number of live tracks.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Integrates one frame of detections. Returns the number of detections
    /// that updated an existing track (the rest spawned new ones).
    pub fn update(&mut self, detections: &[Detection], dt: SimDuration) -> usize {
        let dt_s = dt.as_secs().max(1e-3);
        let predicted: Vec<Vec3> = self
            .tracks
            .iter()
            .map(|s| s.position + s.velocity * dt_s)
            .collect();
        let assigned = Self::associate(&predicted, detections, self.config.gate_radius);
        let mut matched_with: Vec<Option<&Detection>> = vec![None; self.tracks.len()];
        let mut matched = 0usize;
        for (j, d) in detections.iter().enumerate() {
            if let Some(i) = assigned[j] {
                matched_with[i] = Some(d);
                matched += 1;
            }
        }
        let (alpha, beta) = (self.config.base.alpha, self.config.base.beta);
        for (i, s) in self.tracks.iter_mut().enumerate() {
            match matched_with[i] {
                Some(d) => {
                    let residual = d.position - predicted[i];
                    s.position = predicted[i] + residual * alpha;
                    s.velocity += residual * (beta / dt_s);
                    s.frames_since_detection = 0;
                }
                None => {
                    s.position = predicted[i];
                    s.frames_since_detection += 1;
                }
            }
        }
        let max_missed = self.config.base.max_missed_frames;
        self.tracks.retain(|s| s.is_live(max_missed));
        for (j, d) in detections.iter().enumerate() {
            if assigned[j].is_none() {
                self.tracks.push(TrackState {
                    position: d.position,
                    velocity: Vec3::ZERO,
                    frames_since_detection: 0,
                });
            }
        }
        matched
    }

    /// Coasts every track forward one detector-less frame.
    pub fn predict(&mut self, dt: SimDuration) {
        self.update(&[], dt);
    }

    /// Drops every track.
    pub fn reset(&mut self) {
        self.tracks.clear();
    }

    /// Greedy gated nearest-neighbour assignment through the radius index:
    /// detections claim tracks in detection order; each takes the unclaimed
    /// track with the smallest predicted distance within `gate` (ties towards
    /// the smaller track index). Returns the claimed track per detection.
    fn associate(predicted: &[Vec3], detections: &[Detection], gate: f64) -> Vec<Option<usize>> {
        let mut assigned = vec![None; detections.len()];
        if predicted.is_empty() || detections.is_empty() {
            return assigned;
        }
        let mut bounds = Aabb::new(predicted[0], predicted[0]);
        for p in predicted {
            bounds = bounds.union(&Aabb::new(*p, *p));
        }
        let mut grid = PointGrid::new(&bounds, gate.max(1e-6));
        for p in predicted {
            grid.insert(*p);
        }
        let mut claimed = vec![false; predicted.len()];
        let mut candidates: Vec<u32> = Vec::new();
        for (j, d) in detections.iter().enumerate() {
            candidates.clear();
            grid.candidates_within(&d.position, gate, &mut candidates);
            let mut best: Option<(f64, usize)> = None;
            for &c in &candidates {
                let i = c as usize;
                if claimed[i] {
                    continue;
                }
                let dist = predicted[i].distance(&d.position);
                if dist > gate {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bd, bi)) => dist < bd || (dist == bd && i < bi),
                };
                if better {
                    best = Some((dist, i));
                }
            }
            if let Some((_, i)) = best {
                claimed[i] = true;
                assigned[j] = Some(i);
            }
        }
        assigned
    }

    /// The pre-index all-pairs assignment, kept as the differential oracle
    /// for [`MultiTargetTracker::associate`].
    #[cfg(test)]
    fn associate_reference(
        predicted: &[Vec3],
        detections: &[Detection],
        gate: f64,
    ) -> Vec<Option<usize>> {
        let mut assigned = vec![None; detections.len()];
        let mut claimed = vec![false; predicted.len()];
        for (j, d) in detections.iter().enumerate() {
            let mut best: Option<(f64, usize)> = None;
            for (i, p) in predicted.iter().enumerate() {
                if claimed[i] {
                    continue;
                }
                let dist = p.distance(&d.position);
                if dist > gate {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bd, _)) => dist < bd,
                };
                if better {
                    best = Some((dist, i));
                }
            }
            if let Some((_, i)) = best {
                claimed[i] = true;
                assigned[j] = Some(i);
            }
        }
        assigned
    }
}

impl Default for MultiTargetTracker {
    fn default() -> Self {
        MultiTargetTracker::new(MultiTrackerConfig::default())
    }
}

impl fmt::Display for MultiTargetTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tracks[{}]", self.tracks.len())
    }
}

impl fmt::Display for TargetTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.state {
            Some(s) => write!(
                f,
                "track[{} missed {}]",
                s.position, s.frames_since_detection
            ),
            None => f.write_str("track[none]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_env::ObstacleClass;

    fn detection_at(p: Vec3) -> Detection {
        Detection {
            position: p,
            confidence: 0.9,
            image_offset: 0.0,
            class: ObstacleClass::PhotographySubject,
        }
    }

    #[test]
    fn track_initialises_on_first_detection() {
        let mut t = TargetTracker::new(TrackerConfig::default());
        assert!(!t.has_track());
        let d = detection_at(Vec3::new(5.0, 0.0, 1.0));
        let s = t.update(Some(&d), SimDuration::from_millis(100.0)).unwrap();
        assert_eq!(s.position, d.position);
        assert!(t.has_track());
    }

    #[test]
    fn tracker_follows_a_moving_target() {
        let mut t = TargetTracker::new(TrackerConfig::default());
        let dt = SimDuration::from_millis(100.0);
        // Target walks along +x at 2 m/s.
        for i in 0..50 {
            let pos = Vec3::new(i as f64 * 0.2, 0.0, 1.0);
            t.update(Some(&detection_at(pos)), dt);
        }
        let s = t.track().unwrap();
        assert!(s.position.x > 8.0, "estimate lagging: {}", s.position);
        assert!(
            (s.velocity.x - 2.0).abs() < 0.8,
            "velocity estimate {}",
            s.velocity.x
        );
    }

    #[test]
    fn coasting_extrapolates_and_eventually_drops() {
        let mut t = TargetTracker::new(TrackerConfig {
            max_missed_frames: 5,
            ..Default::default()
        });
        let dt = SimDuration::from_millis(100.0);
        for i in 0..30 {
            t.update(Some(&detection_at(Vec3::new(i as f64 * 0.3, 0.0, 1.0))), dt);
        }
        let before = t.track().unwrap().position.x;
        // Miss a few frames: the estimate keeps moving forward.
        t.predict(dt);
        t.predict(dt);
        let coasted = t.track().unwrap();
        assert!(coasted.position.x > before);
        assert_eq!(coasted.frames_since_detection, 2);
        // Miss enough frames and the track is dropped.
        for _ in 0..10 {
            t.predict(dt);
        }
        assert!(!t.has_track());
        assert!(t.track().is_none());
    }

    #[test]
    fn reset_clears_track() {
        let mut t = TargetTracker::new(TrackerConfig::default());
        t.update(
            Some(&detection_at(Vec3::ZERO)),
            SimDuration::from_millis(50.0),
        );
        assert!(t.has_track());
        t.reset();
        assert!(!t.has_track());
    }

    #[test]
    fn display_nonempty() {
        let mut t = TargetTracker::new(TrackerConfig::default());
        assert!(!format!("{t}").is_empty());
        t.update(
            Some(&detection_at(Vec3::ZERO)),
            SimDuration::from_millis(50.0),
        );
        assert!(!format!("{t}").is_empty());
        assert!(!format!("{}", MultiTargetTracker::default()).is_empty());
    }

    #[test]
    fn multi_tracker_maintains_one_track_per_target() {
        let mut t = MultiTargetTracker::default();
        let dt = SimDuration::from_millis(100.0);
        // Two well-separated targets, one walking, one standing.
        for i in 0..30 {
            let walker = Vec3::new(i as f64 * 0.2, 0.0, 1.0);
            let stander = Vec3::new(0.0, 20.0, 1.0);
            let matched = t.update(&[detection_at(walker), detection_at(stander)], dt);
            if i > 0 {
                assert_eq!(matched, 2, "frame {i} failed to match both targets");
            }
        }
        assert_eq!(t.track_count(), 2);
        let walker = &t.tracks()[0];
        assert!(
            walker.position.x > 4.0,
            "walker estimate {}",
            walker.position
        );
        assert!((walker.velocity.x - 2.0).abs() < 0.8);
        assert!(t.tracks()[1].velocity.norm() < 0.1);
    }

    #[test]
    fn multi_tracker_coasts_and_drops_missed_tracks() {
        let mut t = MultiTargetTracker::new(MultiTrackerConfig {
            base: TrackerConfig {
                max_missed_frames: 3,
                ..Default::default()
            },
            ..Default::default()
        });
        let dt = SimDuration::from_millis(100.0);
        for i in 0..10 {
            t.update(&[detection_at(Vec3::new(i as f64 * 0.3, 0.0, 1.0))], dt);
        }
        assert_eq!(t.track_count(), 1);
        for _ in 0..10 {
            t.predict(dt);
        }
        assert_eq!(t.track_count(), 0);
        t.update(&[detection_at(Vec3::ZERO)], dt);
        assert_eq!(t.track_count(), 1);
        t.reset();
        assert_eq!(t.track_count(), 0);
    }

    #[test]
    fn association_matches_reference() {
        // Deterministic scattered tracks and detections (xorshift), dense
        // enough that gating, claiming and ties are all exercised.
        let mut state = 0x0123_4567_89ab_cdefu64;
        let mut unit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for gate in [0.5, 2.0, 8.0] {
            for _ in 0..20 {
                let tracks: Vec<Vec3> = (0..40)
                    .map(|_| Vec3::new(unit() * 30.0 - 15.0, unit() * 30.0 - 15.0, unit() * 4.0))
                    .collect();
                let detections: Vec<Detection> = (0..30)
                    .map(|_| {
                        detection_at(Vec3::new(
                            unit() * 30.0 - 15.0,
                            unit() * 30.0 - 15.0,
                            unit() * 4.0,
                        ))
                    })
                    .collect();
                assert_eq!(
                    MultiTargetTracker::associate(&tracks, &detections, gate),
                    MultiTargetTracker::associate_reference(&tracks, &detections, gate),
                    "association diverged at gate {gate}"
                );
            }
        }
    }
}
