//! Target tracking kernel (KCF substitute).
//!
//! Aerial Photography pairs its detector with a correlation-filter tracker so
//! that the expensive detector can run at a low rate while the tracker keeps
//! the subject's position estimate fresh between detections. Here the tracker
//! is an alpha–beta filter over the detected position with lost-track
//! handling, which preserves the latency/accuracy interplay the workload
//! exercises.

use crate::detection::Detection;
use mav_types::{SimDuration, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// State of the tracked target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackState {
    /// Estimated world-frame position of the target.
    pub position: Vec3,
    /// Estimated world-frame velocity of the target.
    pub velocity: Vec3,
    /// Number of consecutive updates without a detection.
    pub frames_since_detection: u32,
}

impl TrackState {
    /// Returns `true` while the track is considered reliable.
    pub fn is_live(&self, max_missed: u32) -> bool {
        self.frames_since_detection <= max_missed
    }
}

/// Configuration of the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Position blend factor for new detections (alpha).
    pub alpha: f64,
    /// Velocity blend factor (beta).
    pub beta: f64,
    /// After this many consecutive missed frames the track is dropped.
    pub max_missed_frames: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            alpha: 0.6,
            beta: 0.3,
            max_missed_frames: 15,
        }
    }
}

/// The alpha–beta target tracker.
///
/// # Example
///
/// ```
/// use mav_perception::{TargetTracker, TrackerConfig};
/// use mav_types::{SimDuration, Vec3};
///
/// let mut tracker = TargetTracker::new(TrackerConfig::default());
/// // Coast with no detections: no track yet.
/// assert!(tracker.predict(SimDuration::from_millis(100.0)).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TargetTracker {
    config: TrackerConfig,
    state: Option<TrackState>,
}

impl TargetTracker {
    /// Creates a tracker with no active track.
    pub fn new(config: TrackerConfig) -> Self {
        TargetTracker {
            config,
            state: None,
        }
    }

    /// The current track, if one is live.
    pub fn track(&self) -> Option<&TrackState> {
        self.state.as_ref()
    }

    /// Returns `true` when a live track exists.
    pub fn has_track(&self) -> bool {
        self.state
            .as_ref()
            .is_some_and(|s| s.is_live(self.config.max_missed_frames))
    }

    /// Integrates a detector result. `None` means the detector ran but found
    /// nothing this frame.
    pub fn update(&mut self, detection: Option<&Detection>, dt: SimDuration) -> Option<TrackState> {
        match (self.state.as_mut(), detection) {
            (None, None) => {}
            (None, Some(d)) => {
                self.state = Some(TrackState {
                    position: d.position,
                    velocity: Vec3::ZERO,
                    frames_since_detection: 0,
                });
            }
            (Some(s), Some(d)) => {
                let dt_s = dt.as_secs().max(1e-3);
                let predicted = s.position + s.velocity * dt_s;
                let residual = d.position - predicted;
                s.position = predicted + residual * self.config.alpha;
                s.velocity += residual * (self.config.beta / dt_s);
                s.frames_since_detection = 0;
            }
            (Some(s), None) => {
                // Coast on the constant-velocity model.
                let dt_s = dt.as_secs().max(1e-3);
                s.position += s.velocity * dt_s;
                s.frames_since_detection += 1;
                if !s.is_live(self.config.max_missed_frames) {
                    self.state = None;
                }
            }
        }
        self.state
    }

    /// Coasts the track forward without consuming a detection (used when the
    /// tracker runs at a higher rate than the detector).
    pub fn predict(&mut self, dt: SimDuration) -> Option<TrackState> {
        self.update(None, dt)
    }

    /// Drops the current track.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

impl fmt::Display for TargetTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.state {
            Some(s) => write!(
                f,
                "track[{} missed {}]",
                s.position, s.frames_since_detection
            ),
            None => f.write_str("track[none]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_env::ObstacleClass;

    fn detection_at(p: Vec3) -> Detection {
        Detection {
            position: p,
            confidence: 0.9,
            image_offset: 0.0,
            class: ObstacleClass::PhotographySubject,
        }
    }

    #[test]
    fn track_initialises_on_first_detection() {
        let mut t = TargetTracker::new(TrackerConfig::default());
        assert!(!t.has_track());
        let d = detection_at(Vec3::new(5.0, 0.0, 1.0));
        let s = t.update(Some(&d), SimDuration::from_millis(100.0)).unwrap();
        assert_eq!(s.position, d.position);
        assert!(t.has_track());
    }

    #[test]
    fn tracker_follows_a_moving_target() {
        let mut t = TargetTracker::new(TrackerConfig::default());
        let dt = SimDuration::from_millis(100.0);
        // Target walks along +x at 2 m/s.
        for i in 0..50 {
            let pos = Vec3::new(i as f64 * 0.2, 0.0, 1.0);
            t.update(Some(&detection_at(pos)), dt);
        }
        let s = t.track().unwrap();
        assert!(s.position.x > 8.0, "estimate lagging: {}", s.position);
        assert!(
            (s.velocity.x - 2.0).abs() < 0.8,
            "velocity estimate {}",
            s.velocity.x
        );
    }

    #[test]
    fn coasting_extrapolates_and_eventually_drops() {
        let mut t = TargetTracker::new(TrackerConfig {
            max_missed_frames: 5,
            ..Default::default()
        });
        let dt = SimDuration::from_millis(100.0);
        for i in 0..30 {
            t.update(Some(&detection_at(Vec3::new(i as f64 * 0.3, 0.0, 1.0))), dt);
        }
        let before = t.track().unwrap().position.x;
        // Miss a few frames: the estimate keeps moving forward.
        t.predict(dt);
        t.predict(dt);
        let coasted = t.track().unwrap();
        assert!(coasted.position.x > before);
        assert_eq!(coasted.frames_since_detection, 2);
        // Miss enough frames and the track is dropped.
        for _ in 0..10 {
            t.predict(dt);
        }
        assert!(!t.has_track());
        assert!(t.track().is_none());
    }

    #[test]
    fn reset_clears_track() {
        let mut t = TargetTracker::new(TrackerConfig::default());
        t.update(
            Some(&detection_at(Vec3::ZERO)),
            SimDuration::from_millis(50.0),
        );
        assert!(t.has_track());
        t.reset();
        assert!(!t.has_track());
    }

    #[test]
    fn display_nonempty() {
        let mut t = TargetTracker::new(TrackerConfig::default());
        assert!(!format!("{t}").is_empty());
        t.update(
            Some(&detection_at(Vec3::ZERO)),
            SimDuration::from_millis(50.0),
        );
        assert!(!format!("{t}").is_empty());
    }
}
