//! MAVBench-RS — a Rust reproduction of "MAVBench: Micro Aerial Vehicle
//! Benchmarking" (MICRO 2018): a closed-loop MAV simulator plus the five
//! end-to-end benchmark applications and the experiment harnesses that
//! regenerate every table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the individual workspace crates under short
//! module names so applications can depend on a single crate.
//!
//! # Example
//!
//! ```no_run
//! use mavbench::compute::ApplicationId;
//! use mavbench::core::{run_mission, MissionConfig};
//!
//! let report = run_mission(MissionConfig::fast_test(ApplicationId::PackageDelivery));
//! println!("{report}");
//! ```

#![warn(missing_docs)]

/// Companion-computer latency model and operating points.
pub use mav_compute as compute;
/// Control kernels (PID, path tracking).
pub use mav_control as control;
/// The closed-loop simulator, the five applications and the experiments.
pub use mav_core as core;
/// Quadrotor dynamics and the flight controller.
pub use mav_dynamics as dynamics;
/// Rotor/compute power models and the battery.
pub use mav_energy as energy;
/// Procedural environments and obstacles.
pub use mav_env as env;
/// Perception kernels (point cloud, OctoMap, detection, tracking, SLAM).
pub use mav_perception as perception;
/// Planning kernels (RRT, PRM+A*, frontier, lawnmower, smoothing).
pub use mav_planning as planning;
/// Pub/sub runtime, clock and kernel timing.
pub use mav_runtime as runtime;
/// Depth camera, IMU, GPS and noise models.
pub use mav_sensors as sensors;
/// Geometry, pose, trajectory and unit types.
pub use mav_types as types;
