//! Golden-output tests pinning the legacy closed loop bit-for-bit.
//!
//! The node-graph refactor (PR 2) moved every application's closed loop onto
//! the `mav_runtime::Executor`. With `RateConfig::legacy()` (the default) the
//! executor must reproduce the pre-refactor sequential loop *exactly*: same
//! kernel charges in the same order, same clock arithmetic, same physics
//! steps. These fixtures were captured from the pre-refactor engine and
//! compare every metric by its raw f64 bit pattern, so any drift — a
//! reordered kernel charge, an extra clamp, a changed tick length — fails
//! loudly instead of shifting figures by fractions of a percent.
//!
//! If a future PR *intentionally* changes legacy mission arithmetic, re-run
//! the capture (see the fixture layout below) and update the constants in the
//! same commit, calling the change out in CHANGES.md.

use mav_compute::{ApplicationId, CloudConfig};
use mav_core::{run_mission, MissionConfig, MissionReport, ResolutionPolicy};

/// Exact (bit-pattern) snapshot of one legacy mission's report.
struct GoldenReport {
    success: bool,
    mission_time_secs: u64,
    hover_time_secs: u64,
    distance_m: u64,
    velocity_cap: u64,
    total_energy_j: u64,
    battery_remaining_pct: u64,
    replans: u32,
    detections: u32,
    mapped_volume: u64,
    tracking_error: u64,
    kernel_total_secs: u64,
}

fn assert_bits(label: &str, metric: &str, actual: f64, expected: u64) {
    assert_eq!(
        actual.to_bits(),
        expected,
        "{label}: {metric} drifted from the pre-refactor engine \
         (got {actual} = {:#018x}, want {:#018x})",
        actual.to_bits(),
        expected,
    );
}

fn check(label: &str, report: &MissionReport, golden: &GoldenReport) {
    assert_eq!(
        report.success(),
        golden.success,
        "{label}: success flag changed ({:?})",
        report.failure
    );
    assert_bits(
        label,
        "mission_time_secs",
        report.mission_time_secs,
        golden.mission_time_secs,
    );
    assert_bits(
        label,
        "hover_time_secs",
        report.hover_time_secs,
        golden.hover_time_secs,
    );
    assert_bits(label, "distance_m", report.distance_m, golden.distance_m);
    assert_bits(
        label,
        "velocity_cap",
        report.velocity_cap,
        golden.velocity_cap,
    );
    assert_bits(
        label,
        "total_energy_j",
        report.total_energy.as_joules(),
        golden.total_energy_j,
    );
    assert_bits(
        label,
        "battery_remaining_pct",
        report.battery_remaining_pct,
        golden.battery_remaining_pct,
    );
    assert_eq!(report.replans, golden.replans, "{label}: replans changed");
    assert_eq!(
        report.detections, golden.detections,
        "{label}: detections changed"
    );
    assert_bits(
        label,
        "mapped_volume",
        report.mapped_volume,
        golden.mapped_volume,
    );
    assert_bits(
        label,
        "tracking_error",
        report.tracking_error,
        golden.tracking_error,
    );
    assert_bits(
        label,
        "kernel_total_secs",
        report.kernel_timer.grand_total().as_secs(),
        golden.kernel_total_secs,
    );
}

#[test]
fn legacy_scanning_is_bit_identical() {
    let mut cfg = MissionConfig::fast_test(ApplicationId::Scanning).with_seed(3);
    cfg.environment.extent = 30.0;
    check(
        "scanning seed 3",
        &run_mission(cfg),
        &GoldenReport {
            success: true,
            mission_time_secs: 0x403b63b645a1cb08,
            hover_time_secs: 0x3fc84189374bc6a8,
            distance_m: 0x4064cd0ce535e339,
            velocity_cap: 0x4020000000000000,
            total_energy_j: 0x40c84d1f87aaf048,
            battery_remaining_pct: 0x40583cd89e26df2b,
            replans: 0,
            detections: 0,
            mapped_volume: 0x0000000000000000,
            tracking_error: 0x0000000000000000,
            kernel_total_secs: 0x3fe004189374bc6d,
        },
    );
}

#[test]
fn legacy_package_delivery_is_bit_identical() {
    let mut cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery).with_seed(9);
    cfg.environment.extent = 30.0;
    cfg.environment.obstacle_density = 1.0;
    check(
        "package delivery seed 9",
        &run_mission(cfg),
        &GoldenReport {
            success: true,
            mission_time_secs: 0x402e6e978d4fdf61,
            hover_time_secs: 0x4010428f5c28f5bc,
            distance_m: 0x4047ce1618687ad1,
            velocity_cap: 0x4020000000000000,
            total_energy_j: 0x40b7727c1d9289cd,
            battery_remaining_pct: 0x4058a1e05c6d1b11,
            replans: 0,
            detections: 0,
            mapped_volume: 0x40b9db22d0e56043,
            tracking_error: 0x0000000000000000,
            kernel_total_secs: 0x402c06666666666b,
        },
    );
}

#[test]
fn legacy_mapping_is_bit_identical() {
    let mut cfg = MissionConfig::fast_test(ApplicationId::Mapping3D).with_seed(4);
    cfg.environment.extent = 25.0;
    check(
        "mapping seed 4",
        &run_mission(cfg),
        &GoldenReport {
            success: true,
            mission_time_secs: 0x401f8e147ae14799,
            hover_time_secs: 0x400cddb22d0e55fc,
            distance_m: 0x402b242b71fb9c7a,
            velocity_cap: 0x4020000000000000,
            total_energy_j: 0x40ab82414305e698,
            battery_remaining_pct: 0x4058c8ca9b1e8d87,
            replans: 0,
            detections: 0,
            mapped_volume: 0x40b92c8b43958108,
            tracking_error: 0x0000000000000000,
            kernel_total_secs: 0x40206395810624dc,
        },
    );
}

#[test]
fn legacy_search_and_rescue_is_bit_identical() {
    let mut cfg = MissionConfig::fast_test(ApplicationId::SearchAndRescue).with_seed(6);
    cfg.environment.extent = 25.0;
    cfg.environment.people = 6;
    check(
        "search and rescue seed 6",
        &run_mission(cfg),
        &GoldenReport {
            success: true,
            mission_time_secs: 0x3fe152f1a9fbe76c,
            hover_time_secs: 0x3fe152f1a9fbe76c,
            distance_m: 0x0000000000000000,
            velocity_cap: 0x401e98e6214965c5,
            total_energy_j: 0x406701bc4dca8e2e,
            battery_remaining_pct: 0x4058fd1d5328042a,
            replans: 0,
            detections: 1,
            mapped_volume: 0x406dd2f1a9fbe76f,
            tracking_error: 0x0000000000000000,
            kernel_total_secs: 0x3fe152f1a9fbe76d,
        },
    );
}

#[test]
fn legacy_aerial_photography_is_bit_identical() {
    let mut cfg = MissionConfig::fast_test(ApplicationId::AerialPhotography).with_seed(8);
    cfg.environment.extent = 40.0;
    cfg.environment.obstacle_density = 0.2;
    cfg.time_budget_secs = 60.0;
    check(
        "aerial photography seed 8",
        &run_mission(cfg),
        &GoldenReport {
            success: true,
            mission_time_secs: 0x40352a2339c0ec1a,
            hover_time_secs: 0x4000339c0ebedfa7,
            distance_m: 0x404445abb3036254,
            velocity_cap: 0x4020000000000000,
            total_energy_j: 0x40bf8efffb387bc2,
            battery_remaining_pct: 0x4058814dfc510b46,
            replans: 0,
            detections: 24,
            mapped_volume: 0x0000000000000000,
            tracking_error: 0x3fbdd459f1e8fa28,
            kernel_total_secs: 0x4032aa9fbe76c8b8,
        },
    );
}

#[test]
fn legacy_dynamic_resolution_is_bit_identical() {
    let mut cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery)
        .with_seed(13)
        .with_resolution_policy(ResolutionPolicy::dynamic_default());
    cfg.environment.extent = 30.0;
    cfg.environment.obstacle_density = 1.0;
    check(
        "delivery dynamic resolution seed 13",
        &run_mission(cfg),
        &GoldenReport {
            success: true,
            mission_time_secs: 0x4031f1fbe76c8b60,
            hover_time_secs: 0x4010428f5c28f5bc,
            distance_m: 0x4048eeedf175b913,
            velocity_cap: 0x4020000000000000,
            total_energy_j: 0x40bb6177eff8975c,
            battery_remaining_pct: 0x40589214ed6e4836,
            replans: 0,
            detections: 0,
            mapped_volume: 0x40b5f0a3d70a3d72,
            tracking_error: 0x0000000000000000,
            kernel_total_secs: 0x4030bde353f7ceda,
        },
    );
}

#[test]
fn legacy_cloud_offload_is_bit_identical() {
    let mut cfg = MissionConfig::fast_test(ApplicationId::Mapping3D)
        .with_seed(4)
        .with_cloud(CloudConfig::planning_offload());
    cfg.environment.extent = 25.0;
    check(
        "mapping cloud offload seed 4",
        &run_mission(cfg),
        &GoldenReport {
            success: true,
            mission_time_secs: 0x40186bf258bf257d,
            hover_time_secs: 0x3ffd32dbd1942384,
            distance_m: 0x402b242b71fb9c84,
            velocity_cap: 0x4020000000000000,
            total_energy_j: 0x40a6c5acf71c4acd,
            battery_remaining_pct: 0x4058d24c765b8b76,
            replans: 0,
            detections: 0,
            mapped_volume: 0x40b928f5c28f5c2b,
            tracking_error: 0x0000000000000000,
            kernel_total_secs: 0x4019a508dfea2798,
        },
    );
}

#[test]
fn legacy_noise_sweep_point_is_bit_identical() {
    let mut cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery)
        .with_seed(1000)
        .with_depth_noise(1.0);
    cfg.environment.extent = 30.0;
    cfg.environment.obstacle_density = 1.0;
    check(
        "delivery noise 1.0 seed 1000",
        &run_mission(cfg),
        &GoldenReport {
            success: true,
            mission_time_secs: 0x402e6e978d4fdf61,
            hover_time_secs: 0x4010428f5c28f5bc,
            distance_m: 0x40472d3feb5529cd,
            velocity_cap: 0x4020000000000000,
            total_energy_j: 0x40b76ce2ef847243,
            battery_remaining_pct: 0x4058a1f6d6f820e8,
            replans: 0,
            detections: 0,
            mapped_volume: 0x40b7d0e560418939,
            tracking_error: 0x0000000000000000,
            kernel_total_secs: 0x402c06666666666b,
        },
    );
}
