//! Integration tests for the paper's central claim: compute scaling changes
//! mission time and total energy for the compute-bound workloads (Figs. 11–13)
//! while leaving Scanning essentially untouched (Fig. 10).

use mavbench::compute::{ApplicationId, OperatingPoint};
use mavbench::core::{run_mission, MissionConfig, MissionReport};

fn run_at(app: ApplicationId, point: OperatingPoint, seed: u64) -> MissionReport {
    let mut cfg = MissionConfig::fast_test(app)
        .with_operating_point(point)
        .with_seed(seed);
    cfg.environment.extent = 28.0;
    cfg.environment.obstacle_density = cfg.environment.obstacle_density.min(1.2);
    run_mission(cfg)
}

#[test]
fn package_delivery_benefits_from_compute_scaling() {
    let fast = run_at(
        ApplicationId::PackageDelivery,
        OperatingPoint::reference(),
        9,
    );
    let slow = run_at(ApplicationId::PackageDelivery, OperatingPoint::slowest(), 9);
    assert!(fast.success(), "{:?}", fast.failure);
    assert!(slow.success(), "{:?}", slow.failure);
    // Fig. 11 direction: the fastest operating point flies under a higher
    // Eq. 2 velocity cap, spends no more time per kernel invocation, and does
    // not lose on mission time or energy (the scaled test scenario is small,
    // so the margin is asserted with a tolerance; the full-size sweep is
    // exercised by the fig11 harness binary).
    assert!(fast.velocity_cap > slow.velocity_cap);
    assert!(
        fast.mission_time_secs <= slow.mission_time_secs * 1.10,
        "fast {} s vs slow {} s",
        fast.mission_time_secs,
        slow.mission_time_secs
    );
    // Energy in the scaled scenario is dominated by the (similar) flight
    // distance, so only a loose bound is asserted here; the energy heat map is
    // reproduced by the fig11 harness on the full-size scenario.
    assert!(fast.energy_kj() <= slow.energy_kj() * 1.25);
    let fast_octo = fast
        .kernel_timer
        .mean(mavbench::compute::KernelId::OctomapGeneration);
    let slow_octo = slow
        .kernel_timer
        .mean(mavbench::compute::KernelId::OctomapGeneration);
    assert!(
        fast_octo < slow_octo,
        "octomap mean {fast_octo} vs {slow_octo}"
    );
    // The compute subsystem never dominates energy: rotors remain >90 %.
    assert!(fast.rotor_energy.as_joules() / fast.total_energy.as_joules() > 0.85);
}

#[test]
fn mapping_benefits_from_compute_scaling() {
    let fast = run_at(ApplicationId::Mapping3D, OperatingPoint::reference(), 4);
    let slow = run_at(ApplicationId::Mapping3D, OperatingPoint::slowest(), 4);
    assert!(fast.success() && slow.success());
    // Fig. 12 direction: hover time (waiting for the frontier planner) and
    // mission time shrink with more compute.
    assert!(fast.hover_time_secs < slow.hover_time_secs);
    assert!(fast.mission_time_secs < slow.mission_time_secs);
    assert!(fast.energy_kj() < slow.energy_kj());
}

#[test]
fn scanning_is_insensitive_to_compute_scaling() {
    let fast = run_at(ApplicationId::Scanning, OperatingPoint::reference(), 11);
    let slow = run_at(ApplicationId::Scanning, OperatingPoint::slowest(), 11);
    assert!(fast.success() && slow.success());
    // Fig. 10: the one-off lawnmower plan is amortised over the sweep, so the
    // mission metrics stay within a few percent across operating points.
    let time_ratio = slow.mission_time_secs / fast.mission_time_secs;
    assert!(time_ratio < 1.15, "scanning time ratio {time_ratio}");
    let energy_ratio = slow.energy_kj() / fast.energy_kj();
    assert!(energy_ratio < 1.2, "scanning energy ratio {energy_ratio}");
}

#[test]
fn frequency_scaling_alone_tightens_the_reactive_path() {
    // Moving 2-core 0.8 GHz → 2-core 2.2 GHz (frequency only) must already
    // shorten the reactive kernels and raise the Eq. 2 velocity cap, because
    // OctoMap generation and motion planning sit on the serial critical path
    // (the paper's "sequential bottlenecks").
    use mavbench::compute::ComputePlatform;
    use mavbench::types::Frequency;
    let slow = ComputePlatform::tx2(
        ApplicationId::PackageDelivery,
        OperatingPoint::new(2, Frequency::from_ghz(0.8)),
    );
    let fast = ComputePlatform::tx2(
        ApplicationId::PackageDelivery,
        OperatingPoint::new(2, Frequency::from_ghz(2.2)),
    );
    assert!(fast.reaction_latency() < slow.reaction_latency());
    assert!(fast.planning_latency() < slow.planning_latency());
    let v = |p: &ComputePlatform| {
        mavbench::core::velocity::max_safe_velocity(p.reaction_latency(), 10.0, 5.0)
    };
    assert!(v(&fast) > v(&slow));
}
