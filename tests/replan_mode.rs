//! The in-flight replanning comparison (PR 3) and its paper-predicted
//! direction.
//!
//! MAVBench charges planning latency while the vehicle hovers — the most
//! expensive possible policy, because every planner millisecond is a
//! millisecond of zero progress at full rotor power. `ReplanMode::PlanInMotion`
//! makes the alternative schedulable: the planner node charges the same
//! `MotionPlanning`/`PathSmoothing` kernels across executor rounds while the
//! tracker keeps flying the stale plan, then swaps the fresh trajectory in
//! through the latched plan topic. Same kernels, same collision alerts —
//! strictly less mission time.

use mav_core::experiments::{replan_mode_sweep, replan_scenario};
use mav_core::{run_mission, MissionConfig, ReplanMode};

use mav_compute::ApplicationId;

#[test]
fn plan_in_motion_shortens_the_mission_at_equal_collision_counts() {
    let sweep = replan_mode_sweep(replan_scenario);
    assert_eq!(sweep.len(), 2);
    let hover = &sweep[0];
    let motion = &sweep[1];
    assert_eq!(hover.mode, ReplanMode::HoverToPlan);
    assert_eq!(motion.mode, ReplanMode::PlanInMotion);
    assert!(
        hover.report.success(),
        "hover-to-plan failed: {:?}",
        hover.report.failure
    );
    assert!(
        motion.report.success(),
        "plan-in-motion failed: {:?}",
        motion.report.failure
    );
    // The scenario must actually exercise replanning: without collision
    // alerts the two policies are identical and the comparison is vacuous.
    assert!(
        hover.report.replans >= 1,
        "scenario raised no collision alerts"
    );
    // Equal collision counts: both runs answered the same number of alerts
    // (hover counts episode-ending replans, motion counts in-flight ones).
    assert_eq!(
        hover.report.replans, motion.report.replans,
        "collision counts diverged; the mission-time comparison is not like-for-like"
    );
    // The direction: planning while flying strictly beats planning while
    // hovering. (The win can come from either mechanism — planning latency
    // flown instead of hovered when the threat is distant, or replanning
    // from the in-flight position instead of a hover point, which yields a
    // shorter continuation route; in this scenario the route is the larger
    // effect.)
    assert!(
        motion.report.mission_time_secs < hover.report.mission_time_secs,
        "plan-in-motion did not shorten the mission: {:.1} s vs {:.1} s",
        motion.report.mission_time_secs,
        hover.report.mission_time_secs,
    );
}

#[test]
fn plan_in_motion_missions_are_deterministic() {
    let config = || {
        replan_scenario(MissionConfig::new(ApplicationId::PackageDelivery))
            .with_replan_mode(ReplanMode::PlanInMotion)
    };
    let a = run_mission(config());
    let b = run_mission(config());
    assert_eq!(a, b, "two identical plan-in-motion missions diverged");
    assert!(
        a.success(),
        "plan-in-motion mission failed: {:?}",
        a.failure
    );
}

#[test]
fn hover_to_plan_is_the_default_and_unchanged() {
    // The default mode must remain HoverToPlan so the golden legacy pins
    // (tests/golden_legacy.rs) keep guarding the historical arithmetic.
    let cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery);
    assert_eq!(cfg.replan_mode, ReplanMode::HoverToPlan);
}
