//! Equivalence suite for the spatial-index overhaul (PR 4).
//!
//! The occupied-voxel index, the DDA swept-segment prefilter and the
//! bucketed planner neighbour lookup are all *exact* accelerations: every
//! collision decision, counter and planned path must be identical to the
//! reference implementations they replaced. These properties pin that —
//! randomized maps and radii for the map predicates, randomized planning
//! problems for the planners, and the insert → reresolve → insert chain for
//! index invalidation.

use mav_perception::{OctoMap, OctoMapConfig, PointCloud};
use mav_planning::{CollisionChecker, PlannerConfig, PlannerKind, ShortestPathPlanner};
use mav_types::{Aabb, Vec3};
use proptest::prelude::*;

/// Map resolutions under test: dyadic and non-dyadic, fine and coarse (the
/// paper's 0.15 m and 0.80 m case-study endpoints included).
const RESOLUTIONS: [f64; 5] = [0.15, 0.25, 0.3, 0.5, 0.8];

fn arb_point(extent: f64) -> impl Strategy<Value = Vec3> {
    (-extent..extent, -extent..extent, 0.0..6.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

/// Builds a map from `rays` sensor rays out of a fixed origin, at the
/// resolution selected by `res_idx`.
fn ray_map(res_idx: usize, rays: &[Vec3]) -> OctoMap {
    let resolution = RESOLUTIONS[res_idx % RESOLUTIONS.len()];
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 24.0);
    let origin = Vec3::new(0.0, 0.0, 1.5);
    for endpoint in rays {
        map.insert_ray(&origin, endpoint);
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The indexed inflation query answers exactly like the reference
    /// tree-scan for arbitrary maps, query points and radii.
    #[test]
    fn inflation_query_matches_reference(
        res_idx in 0usize..RESOLUTIONS.len(),
        rays in proptest::collection::vec(arb_point(20.0), 1..40),
        queries in proptest::collection::vec(arb_point(24.0), 1..24),
        radius in 0.0f64..2.5,
    ) {
        let map = ray_map(res_idx, &rays);
        for q in &queries {
            prop_assert_eq!(
                map.is_occupied_with_inflation(q, radius),
                map.is_occupied_with_inflation_reference(q, radius),
                "inflation decision diverged at {} (radius {})", q, radius
            );
        }
    }

    /// The DDA-prefiltered swept-segment predicate answers exactly like the
    /// reference sampled predicate.
    #[test]
    fn segment_free_matches_reference(
        res_idx in 0usize..RESOLUTIONS.len(),
        rays in proptest::collection::vec(arb_point(20.0), 1..40),
        segments in proptest::collection::vec((arb_point(24.0), arb_point(24.0)), 1..12),
        radius in 0.0f64..1.5,
    ) {
        let map = ray_map(res_idx, &rays);
        for (a, b) in &segments {
            prop_assert_eq!(
                map.segment_free(a, b, radius),
                map.segment_free_reference(a, b, radius),
                "segment decision diverged on {} -> {} (radius {})", a, b, radius
            );
        }
    }

    /// Index invalidation across the dynamic-resolution path: rays, then a
    /// full re-resolution, then more rays — queries and counters must still
    /// match the tree exactly.
    #[test]
    fn index_survives_reresolution_chain(
        res_idx in 0usize..RESOLUTIONS.len(),
        new_res_idx in 0usize..RESOLUTIONS.len(),
        before in proptest::collection::vec(arb_point(20.0), 1..24),
        after in proptest::collection::vec(arb_point(20.0), 1..24),
        queries in proptest::collection::vec(arb_point(24.0), 1..12),
        radius in 0.0f64..1.5,
    ) {
        let mut map = ray_map(res_idx, &before);
        map = map.reresolved(RESOLUTIONS[new_res_idx % RESOLUTIONS.len()]);
        let origin = Vec3::new(0.0, 0.0, 1.5);
        for endpoint in &after {
            map.insert_ray(&origin, endpoint);
        }
        for q in &queries {
            prop_assert_eq!(
                map.is_occupied_with_inflation(q, radius),
                map.is_occupied_with_inflation_reference(q, radius),
                "post-reresolve inflation decision diverged at {}", q
            );
        }
        // The O(1) known counter reproduces the tree walk bit-for-bit
        // (including its dedup accounting) at every resolution.
        prop_assert_eq!(map.known_voxel_count(), map.known_voxel_count_scan());
    }

    /// Both planners grow bit-identical solutions with the bucket index on
    /// and off: same waypoints, same sample counts, same failures.
    #[test]
    fn planners_identical_with_and_without_index(
        seed in 0u64..64,
        kind_sel in 0u8..2,
        wall_sel in 0u8..2,
    ) {
        let kind = if kind_sel == 0 { PlannerKind::Rrt } else { PlannerKind::PrmAstar };
        let wall = wall_sel == 1;
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 32.0);
        if wall {
            let origin = Vec3::new(0.0, 0.0, 1.0);
            for i in -20..=20 {
                for z in [0.5, 1.5, 2.5, 3.5, 4.5, 5.5] {
                    map.insert_ray(&origin, &Vec3::new(8.0, i as f64 * 0.5, z));
                }
            }
        }
        let checker = CollisionChecker::new(0.33);
        let bounds = Aabb::new(Vec3::new(-25.0, -25.0, 0.5), Vec3::new(25.0, 25.0, 6.0));
        let start = Vec3::new(0.0, 0.0, 2.0);
        let goal = Vec3::new(16.0, 2.0, 2.0);
        let base = PlannerConfig::new(kind, bounds).with_seed(seed);
        let indexed = ShortestPathPlanner::new(base.with_spatial_index(true))
            .plan(&map, &checker, start, goal);
        let linear = ShortestPathPlanner::new(base.with_spatial_index(false))
            .plan(&map, &checker, start, goal);
        match (indexed, linear) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "planned paths diverged"),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "planner outcomes diverged: {:?} vs {:?}", a, b),
        }
    }
}

/// The O(1) counters match the full tree walk on a deterministic dyadic-
/// resolution scenario covering rays, a dense batched point cloud, and the
/// dynamic-resolution rebuild.
#[test]
fn counters_match_tree_walk() {
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 32.0);
    let origin = Vec3::new(0.0, 0.0, 1.0);
    for i in -12..=12 {
        for z in [0.5, 1.0, 1.5, 2.0] {
            map.insert_ray(&origin, &Vec3::new(10.0, i as f64 * 0.5, z));
        }
    }
    // Dense scan to force the batched insertion path (points × res² ≥ 250).
    let mut points = Vec::new();
    for iy in -40..=40 {
        for iz in 0..14 {
            points.push(Vec3::new(12.0, iy as f64 * 0.25, iz as f64 * 0.3));
        }
    }
    map.insert_point_cloud(&PointCloud::new(origin, points));
    assert_eq!(map.known_voxel_count(), map.known_voxel_count_scan());
    assert_eq!(map.occupied_voxel_count(), map.occupied_voxel_count_scan());
    // Query equivalence holds on a batched-built map too.
    for (a, b) in [
        (Vec3::new(-5.0, -8.0, 1.0), Vec3::new(14.0, 8.0, 2.0)),
        (Vec3::new(0.0, 0.0, 1.0), Vec3::new(9.0, 0.0, 1.0)),
    ] {
        assert_eq!(
            map.segment_free(&a, &b, 0.33),
            map.segment_free_reference(&a, &b, 0.33)
        );
    }
    assert!(map.occupied_voxel_count() > 50);
    assert!(map.known_voxel_count() > map.occupied_voxel_count());

    let coarse = map.reresolved(1.0);
    assert_eq!(coarse.known_voxel_count(), coarse.known_voxel_count_scan());
    assert_eq!(
        coarse.occupied_voxel_count(),
        coarse.occupied_voxel_count_scan()
    );

    let empty = OctoMap::new(OctoMapConfig::default(), 32.0);
    assert_eq!(empty.known_voxel_count(), 0);
    assert_eq!(empty.occupied_voxel_count(), 0);
}

/// At non-dyadic resolutions the tree-walk oracle can merge adjacent leaves
/// whose floating-point-noisy centres round to the same dedup key, so it may
/// undercount occupied voxels; the O(1) counter is exact per leaf (the same
/// occupancy the collision queries see) and therefore never below the walk,
/// while the known counter keeps walk parity bit-for-bit. This pins the
/// intentional semantic split called out in the PR 4 notes.
#[test]
fn occupied_counter_never_undercounts_at_non_dyadic_resolution() {
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.15), 32.0);
    let origin = Vec3::new(0.0, 0.0, 1.0);
    for i in -30..=30 {
        for z in [0.5, 1.0, 1.5, 2.0] {
            map.insert_ray(&origin, &Vec3::new(9.0, i as f64 * 0.2, z));
        }
    }
    assert!(map.occupied_voxel_count() >= map.occupied_voxel_count_scan());
    assert_eq!(map.known_voxel_count(), map.known_voxel_count_scan());
}

/// A map whose rays flip voxels occupied → free (the obstacle moved) must
/// drop them from the index too: the inflation query may not keep reporting
/// stale occupancy.
#[test]
fn index_drops_voxels_that_flip_back_to_free() {
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.25), 32.0);
    let origin = Vec3::new(0.0, 0.0, 1.0);
    let target = Vec3::new(5.0, 0.0, 1.0);
    map.insert_ray(&origin, &target);
    assert!(map.is_occupied_with_inflation(&target, 0.2));
    for _ in 0..10 {
        map.insert_ray(&origin, &Vec3::new(12.0, 0.0, 1.0));
    }
    assert!(!map.is_occupied_with_inflation(&target, 0.2));
    // The clearing rays' own endpoint is now the only occupied voxel.
    assert_eq!(map.occupied_voxel_count(), 1);
    assert_eq!(map.occupied_voxel_count(), map.occupied_voxel_count_scan());
}
