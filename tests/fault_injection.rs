//! PR 9 — deterministic fault injection and graceful degradation.
//!
//! Three properties are pinned here:
//!
//! 1. **Faults off is free.** An empty [`FaultPlan`] and a disabled
//!    [`DegradationConfig`] must leave every golden-legacy mission
//!    bit-identical to the default configuration — the injector compiles to
//!    `None` and every degradation hook takes the historical branch verbatim.
//! 2. **Fault traces are schedule-independent.** With a seeded fault plan the
//!    reliability-sweep aggregates (and the per-class breakdown) hash to the
//!    same SHA-256 digest at 1, 2, 4 and 8 worker threads: every injector
//!    draw is a pure function of `(seed, site, counter)`, never of worker
//!    identity or wall-clock interleaving.
//! 3. **Degradation pays for itself.** Partial-trajectory splicing recovers
//!    from injected planner timeouts in less mission time than discarding
//!    the whole plan, on a pinned ensemble of replanning-heavy scenarios.

use mav_compute::{ApplicationId, CloudConfig};
use mav_core::experiments::quick_config;
use mav_core::reliability::reliability_sweep_classified;
use mav_core::{
    run_mission, DegradationConfig, FaultPlan, MissionConfig, MissionReport, ReplanMode,
    ResolutionPolicy, ScenarioGenerator, SweepRunner,
};
use mav_types::{sha256_hex, ToJson};

/// The eight mission configurations pinned by `tests/golden_legacy.rs`, in
/// the same order. Kept in sync by hand: if golden_legacy gains a fixture,
/// add it here so the faults-off invariance covers it too.
fn golden_configs() -> Vec<(&'static str, MissionConfig)> {
    let mut scanning = MissionConfig::fast_test(ApplicationId::Scanning).with_seed(3);
    scanning.environment.extent = 30.0;
    let mut delivery = MissionConfig::fast_test(ApplicationId::PackageDelivery).with_seed(9);
    delivery.environment.extent = 30.0;
    delivery.environment.obstacle_density = 1.0;
    let mut mapping = MissionConfig::fast_test(ApplicationId::Mapping3D).with_seed(4);
    mapping.environment.extent = 25.0;
    let mut sar = MissionConfig::fast_test(ApplicationId::SearchAndRescue).with_seed(6);
    sar.environment.extent = 25.0;
    sar.environment.people = 6;
    let mut photo = MissionConfig::fast_test(ApplicationId::AerialPhotography).with_seed(8);
    photo.environment.extent = 40.0;
    photo.environment.obstacle_density = 0.2;
    photo.time_budget_secs = 60.0;
    let mut dynres = MissionConfig::fast_test(ApplicationId::PackageDelivery)
        .with_seed(13)
        .with_resolution_policy(ResolutionPolicy::dynamic_default());
    dynres.environment.extent = 30.0;
    dynres.environment.obstacle_density = 1.0;
    let mut cloud = MissionConfig::fast_test(ApplicationId::Mapping3D)
        .with_seed(4)
        .with_cloud(CloudConfig::planning_offload());
    cloud.environment.extent = 25.0;
    let mut noise = MissionConfig::fast_test(ApplicationId::PackageDelivery)
        .with_seed(1000)
        .with_depth_noise(1.0);
    noise.environment.extent = 30.0;
    noise.environment.obstacle_density = 1.0;
    vec![
        ("scanning seed 3", scanning),
        ("package delivery seed 9", delivery),
        ("mapping seed 4", mapping),
        ("search and rescue seed 6", sar),
        ("aerial photography seed 8", photo),
        ("delivery dynamic resolution seed 13", dynres),
        ("mapping cloud offload seed 4", cloud),
        ("delivery noise 1.0 seed 1000", noise),
    ]
}

fn assert_reports_bit_identical(label: &str, baseline: &MissionReport, probed: &MissionReport) {
    let metrics = [
        (
            "mission_time_secs",
            baseline.mission_time_secs,
            probed.mission_time_secs,
        ),
        (
            "hover_time_secs",
            baseline.hover_time_secs,
            probed.hover_time_secs,
        ),
        ("distance_m", baseline.distance_m, probed.distance_m),
        ("velocity_cap", baseline.velocity_cap, probed.velocity_cap),
        (
            "total_energy_j",
            baseline.total_energy.as_joules(),
            probed.total_energy.as_joules(),
        ),
        (
            "battery_remaining_pct",
            baseline.battery_remaining_pct,
            probed.battery_remaining_pct,
        ),
        (
            "mapped_volume",
            baseline.mapped_volume,
            probed.mapped_volume,
        ),
        (
            "tracking_error",
            baseline.tracking_error,
            probed.tracking_error,
        ),
    ];
    for (metric, want, got) in metrics {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{label}: {metric} drifted with an empty fault plan (got {got}, want {want})"
        );
    }
    assert_eq!(
        baseline, probed,
        "{label}: report drifted with an empty fault plan"
    );
}

/// Property 1: an explicitly-empty fault plan plus disabled degradation is
/// structurally the same mission as the default configuration, bit for bit,
/// for every fixture golden_legacy pins — and no degraded summary appears.
#[test]
fn empty_fault_plan_leaves_every_golden_mission_bit_identical() {
    for (label, config) in golden_configs() {
        let baseline = run_mission(config.clone());
        let probed = run_mission(
            config
                .with_fault_plan(FaultPlan::none())
                .with_degradation(DegradationConfig::off()),
        );
        assert!(
            baseline.degraded.is_none() && probed.degraded.is_none(),
            "{label}: faults-off mission must not emit a degraded summary"
        );
        assert_reports_bit_identical(label, &baseline, &probed);
    }
}

/// Property 2: with a seeded fault plan, the sweep aggregates and the
/// per-class breakdown are SHA-256-identical at every worker-thread count.
#[test]
fn seeded_fault_sweep_hashes_identically_across_threads() {
    let plan = FaultPlan::parse(
        "cam-drop=0.2@3,noise-burst=0.25,kernel-spike=0.2@3,plan-timeout=2x,\
         topic-drop=0.05,battery-fade=0.2",
    )
    .expect("fault plan parses");
    let generator = ScenarioGenerator::new(ApplicationId::PackageDelivery, 77)
        .with_fault_plans(vec![FaultPlan::none(), plan.scaled(0.5), plan])
        .with_degradation(DegradationConfig::defensive());
    let mut digests = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let runner = SweepRunner::new().with_threads(threads);
        let (stats, classes) = reliability_sweep_classified(&runner, &generator, 64, 16);
        let mut fingerprint = stats.to_json().to_string_compact();
        for (class, class_stats) in &classes {
            fingerprint.push_str(class);
            fingerprint.push_str(&class_stats.to_json().to_string_compact());
        }
        digests.push((threads, sha256_hex(fingerprint.as_bytes())));
    }
    let (_, reference) = digests[0].clone();
    for (threads, digest) in &digests {
        assert_eq!(
            digest, &reference,
            "fault-sweep aggregate digest diverged at {threads} threads"
        );
    }
    // The digest must also fingerprint a sweep that actually injected faults:
    // the cohort labels prove all three fault plans were exercised.
    let (_, classes) =
        reliability_sweep_classified(&SweepRunner::new().with_threads(2), &generator, 64, 16);
    let labels: Vec<&str> = classes.keys().map(|k| k.as_str()).collect();
    assert!(
        labels.iter().any(|l| l.ends_with("+faults:none")),
        "expected a fault-free cohort, got {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.contains("cam-drop")),
        "expected a faulted cohort, got {labels:?}"
    );
}

/// Injected faults must actually perturb the mission — otherwise property 1
/// would hold vacuously.
#[test]
fn injected_faults_perturb_the_mission() {
    let (_, config) = golden_configs().remove(1);
    let baseline = run_mission(config.clone());
    let faulted = run_mission(
        config.with_fault_plan(
            FaultPlan::parse("cam-drop=0.5@4,kernel-spike=0.5@4,battery-fade=0.3")
                .expect("fault plan parses"),
        ),
    );
    assert_ne!(
        baseline, faulted,
        "a heavy fault plan left the mission untouched — injector hooks are dead"
    );
}

/// Property 3 (satellite: partial-trajectory splicing): with the planner
/// stretched 3× by an injected plan-timeout fault, grafting the fresh
/// segment onto the still-valid prefix of the stale plan recovers in less
/// total mission time than replacing the whole trajectory. Direction-tested
/// over a pinned replanning-heavy ensemble (the `replan_scenario` shape at
/// thirty seeds) so one lucky seed can't decide it.
#[test]
fn plan_splicing_shortens_recovery_under_planner_timeouts() {
    let plan = FaultPlan::parse("plan-timeout=3x").expect("fault plan parses");
    let policy = DegradationConfig::off()
        .with_watchdog()
        .with_plan_timeout(1.0);
    let mission = |seed: u64, splice: bool| -> MissionReport {
        let mut cfg = quick_config(MissionConfig::new(ApplicationId::PackageDelivery))
            .with_seed(seed)
            .with_replan_mode(ReplanMode::PlanInMotion)
            .with_fault_plan(plan);
        cfg.environment.extent = 70.0;
        cfg.environment.obstacle_density = 3.0;
        let degradation = if splice {
            policy.with_plan_splicing()
        } else {
            policy
        };
        run_mission(cfg.with_degradation(degradation))
    };
    let mut discard_total = 0.0;
    let mut splice_total = 0.0;
    for seed in 1u64..=30 {
        discard_total += mission(seed, false).mission_time_secs;
        splice_total += mission(seed, true).mission_time_secs;
    }
    assert!(
        splice_total < discard_total,
        "plan splicing should shorten recovery under planner timeouts: \
         spliced ensemble {splice_total:.2} s vs discard {discard_total:.2} s"
    );
}
