//! Property-based tests on cross-crate invariants of the MAVBench-RS stack.

use mavbench::compute::{table1_profile, ApplicationId, KernelId, OperatingPoint};
use mavbench::core::velocity::max_safe_velocity;
use mavbench::energy::{Battery, BatteryConfig, RotorPowerModel};
use mavbench::perception::{Occupancy, OctoMap, OctoMapConfig};
use mavbench::planning::{PathSmoother, SmootherConfig};
use mavbench::types::{Frequency, Power, SimDuration, SimTime, Vec3};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. 2: more latency never increases the safe velocity, and the bound is
    /// always positive and below the zero-latency kinematic limit.
    #[test]
    fn eq2_monotone_and_bounded(dt1 in 0.0f64..5.0, dt2 in 0.0f64..5.0, d in 0.5f64..30.0, a in 0.5f64..10.0) {
        let (lo, hi) = if dt1 <= dt2 { (dt1, dt2) } else { (dt2, dt1) };
        let v_lo = max_safe_velocity(SimDuration::from_secs(lo), d, a);
        let v_hi = max_safe_velocity(SimDuration::from_secs(hi), d, a);
        prop_assert!(v_hi <= v_lo + 1e-9);
        prop_assert!(v_lo <= (2.0 * a * d).sqrt() + 1e-9);
        prop_assert!(v_hi > 0.0);
    }

    /// Kernel latency never improves when frequency drops or cores are removed.
    #[test]
    fn kernel_latency_is_monotone_in_the_operating_point(
        app_idx in 0usize..5,
        cores in 1u32..=4,
        ghz in 0.5f64..2.2,
    ) {
        let app = ApplicationId::all()[app_idx];
        let profile = table1_profile(app);
        let slower = OperatingPoint::new(cores, Frequency::from_ghz(ghz));
        let reference = OperatingPoint::reference();
        for (_, kernel_profile) in profile.iter() {
            let at_ref = kernel_profile.latency(&reference);
            let at_slower = kernel_profile.latency(&slower);
            prop_assert!(at_slower >= at_ref);
        }
    }

    /// The battery's state of charge is non-increasing, stays in [0, 1], and
    /// the voltage stays within the pack's physical limits under any discharge
    /// pattern.
    #[test]
    fn battery_invariants(powers in proptest::collection::vec(0.0f64..900.0, 1..60)) {
        let cfg = BatteryConfig::matrice_tb47();
        let mut battery = Battery::new(cfg);
        let mut last_soc = battery.state_of_charge();
        for p in powers {
            battery.discharge(Power::from_watts(p), SimDuration::from_secs(5.0));
            let soc = battery.state_of_charge();
            prop_assert!(soc <= last_soc + 1e-12);
            prop_assert!((0.0..=1.0).contains(&soc));
            let v = battery.voltage();
            prop_assert!(v <= cfg.cell_full_voltage * cfg.cells as f64 + 1e-9);
            prop_assert!(v >= cfg.cell_empty_voltage * cfg.cells as f64 - 1e-9);
            last_soc = soc;
        }
    }

    /// Rotor power grows with horizontal speed at any acceleration.
    #[test]
    fn rotor_power_monotone_in_speed(v1 in 0.0f64..15.0, v2 in 0.0f64..15.0, a in 0.0f64..5.0) {
        let model = RotorPowerModel::dji_matrice_100();
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let p_lo = model.power(&Vec3::new(lo, 0.0, 0.0), &Vec3::new(a, 0.0, 0.0), &Vec3::ZERO);
        let p_hi = model.power(&Vec3::new(hi, 0.0, 0.0), &Vec3::new(a, 0.0, 0.0), &Vec3::ZERO);
        prop_assert!(p_hi >= p_lo);
    }

    /// Smoothed trajectories always respect the velocity/acceleration limits
    /// they were given and preserve their endpoints.
    #[test]
    fn smoothing_respects_limits(
        xs in proptest::collection::vec(-30.0f64..30.0, 2..6),
        vmax in 1.0f64..12.0,
        amax in 1.0f64..6.0,
    ) {
        let waypoints: Vec<Vec3> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| Vec3::new(*x, (i as f64) * 7.0, 3.0))
            .collect();
        let smoother = PathSmoother::new(SmootherConfig::new(vmax, amax));
        let traj = smoother.smooth(&waypoints, SimTime::ZERO).unwrap();
        prop_assert!(traj.max_speed() <= vmax + 1e-6);
        prop_assert!(traj.max_acceleration() <= amax + 1e-6);
        prop_assert!(traj.first().unwrap().position.distance(&waypoints[0]) < 1e-6);
        prop_assert!(traj.last().unwrap().position.distance(waypoints.last().unwrap()) < 1e-6);
    }

    /// Inserting a ray into the occupancy map always marks the endpoint voxel
    /// occupied and never marks voxels beyond it.
    #[test]
    fn octomap_ray_endpoint_is_occupied(
        x in 2.0f64..20.0,
        y in -15.0f64..15.0,
        z in 0.5f64..10.0,
        resolution in 0.2f64..1.0,
    ) {
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 40.0);
        let origin = Vec3::new(0.0, 0.0, 1.0);
        let endpoint = Vec3::new(x, y, z);
        map.insert_ray(&origin, &endpoint);
        prop_assert_eq!(map.query(&endpoint), Occupancy::Occupied);
        // A point well beyond the endpoint along the same ray is unknown.
        let beyond = origin + (endpoint - origin) * 1.6;
        if map.in_domain(&beyond) && beyond.distance(&endpoint) > 2.0 * resolution {
            prop_assert_ne!(map.query(&beyond), Occupancy::Occupied);
        }
    }

    /// Kernel ids used by any application profile are always attributed to one
    /// of the three pipeline stages.
    #[test]
    fn every_profiled_kernel_has_a_stage(app_idx in 0usize..5) {
        let app = ApplicationId::all()[app_idx];
        for (kernel, _) in table1_profile(app).iter() {
            let _stage = kernel.stage();
            prop_assert!(!kernel.short_name().is_empty());
            prop_assert!(KernelId::all().contains(kernel));
        }
    }
}
