//! The pipelined executor (PR 5) and its charging invariants, plus the
//! per-node operating-point (big.LITTLE DVFS) semantics.
//!
//! The paper charges each executor round as the *sum* of the round's node
//! latencies — one core running the whole graph back to back. Real MAV
//! stacks pipeline: the camera captures frame N+1 while the mapper
//! integrates frame N on another core. `ExecModel::Pipelined` charges the
//! round's critical path over pipeline stages instead; these tests pin the
//! ordering invariants (serial ≥ pipelined ≥ slowest stage), the mission
//! direction, and the per-node DVFS accounting.

use mav_compute::{ApplicationId, KernelId, OperatingPoint};
use mav_core::experiments::{exec_model_scenario, exec_model_sweep};
use mav_core::{
    run_mission, ExecModel, ExecStage, MissionConfig, MissionContext, NodeOpConfig,
    ResolutionPolicy,
};
use mav_runtime::{Executor, Node, NodeOutput, SimClock};
use mav_types::{Frequency, Result, SimDuration, SimTime};
use proptest::prelude::*;

/// A fixed-cost node pinned to one stage.
struct StagedNode {
    name: String,
    stage: ExecStage,
    cost: SimDuration,
}

impl Node<SimClock> for StagedNode {
    fn name(&self) -> &str {
        &self.name
    }
    fn period(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn stage(&self) -> ExecStage {
        self.stage
    }
    fn tick(&mut self, _ctx: &mut SimClock, _now: SimTime) -> Result<NodeOutput> {
        Ok(NodeOutput::kernel(KernelId::OctomapGeneration, self.cost))
    }
}

const STAGES: [ExecStage; 6] = [
    ExecStage::Housekeeping,
    ExecStage::Sensing,
    ExecStage::Perception,
    ExecStage::Planning,
    ExecStage::Control,
    ExecStage::Monolithic,
];

/// One round's charge for the given (cost ms, stage index) node set.
fn one_round_charge(nodes: &[(f64, usize)], model: ExecModel) -> f64 {
    let mut clock = SimClock::new();
    let mut exec = Executor::new().with_exec_model(model);
    for (i, &(cost_ms, stage_idx)) in nodes.iter().enumerate() {
        exec.add_node(StagedNode {
            name: format!("node{i}"),
            stage: STAGES[stage_idx % STAGES.len()],
            cost: SimDuration::from_millis(cost_ms),
        });
    }
    exec.step(&mut clock).unwrap().as_millis()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any node set: serial round latency ≥ pipelined round latency ≥
    /// the slowest single node. (The pipelined charge is also ≥ the widest
    /// stage sum by construction, of which the slowest node is a lower
    /// bound.)
    #[test]
    fn serial_ge_pipelined_ge_slowest_node(
        nodes in proptest::collection::vec((0.0f64..400.0, 0usize..6), 1..8)
    ) {
        let serial = one_round_charge(&nodes, ExecModel::Serial);
        let pipelined = one_round_charge(&nodes, ExecModel::Pipelined);
        let slowest = nodes.iter().map(|(c, _)| *c).fold(0.0f64, f64::max);
        prop_assert!(
            serial >= pipelined - 1e-9,
            "serial {serial} ms < pipelined {pipelined} ms"
        );
        prop_assert!(
            pipelined >= slowest - 1e-9,
            "pipelined {pipelined} ms < slowest node {slowest} ms"
        );
        // And with every node monolithic (the default stage), pipelined
        // degenerates to the serial sum exactly.
        let all_mono: Vec<(f64, usize)> = nodes.iter().map(|(c, _)| (*c, 5)).collect();
        let mono_pipelined = one_round_charge(&all_mono, ExecModel::Pipelined);
        let mono_serial = one_round_charge(&all_mono, ExecModel::Serial);
        prop_assert!((mono_pipelined - mono_serial).abs() < 1e-9);
    }
}

#[test]
fn pipelined_mission_is_strictly_shorter_on_the_overlap_scenario() {
    // The camera+mapper overlap scenario at mission scope: the same delivery
    // flight under both charging models. Rounds shorten to the critical path,
    // so control and the collision monitor run at a finer grain and the
    // episode's convergence tail shrinks — mission time strictly shorter,
    // everything else like-for-like (same route, same alert count).
    let rows = exec_model_sweep(exec_model_scenario);
    assert_eq!(rows.len(), 4);
    let serial = &rows[0];
    let pipelined = &rows[1];
    assert_eq!(serial.exec_model, ExecModel::Serial);
    assert_eq!(pipelined.exec_model, ExecModel::Pipelined);
    for row in &rows {
        assert!(
            row.report.success(),
            "{} failed: {:?}",
            row.label,
            row.report.failure
        );
    }
    assert_eq!(
        serial.report.replans, pipelined.report.replans,
        "alert counts diverged; the comparison is not like-for-like"
    );
    assert_eq!(
        serial.report.velocity_cap.to_bits(),
        pipelined.report.velocity_cap.to_bits(),
        "the Eq. 2 cap is schedule-analytic and must not depend on the exec model"
    );
    assert!(
        pipelined.report.mission_time_secs < serial.report.mission_time_secs,
        "pipelined charging did not shorten the mission: {:.3} s vs {:.3} s",
        pipelined.report.mission_time_secs,
        serial.report.mission_time_secs,
    );

    // The DVFS pair: rows 3 (all-little) and 4 (big.LITTLE) share identical
    // perception/control points, hence an identical velocity cap — and both
    // are lower than the mission-global reference cap (downclocked
    // perception erodes Eq. 2).
    let little = &rows[2];
    let split = &rows[3];
    assert_eq!(
        little.report.velocity_cap.to_bits(),
        split.report.velocity_cap.to_bits(),
        "identical perception/control points must give an identical cap"
    );
    assert!(
        little.report.velocity_cap < serial.report.velocity_cap,
        "downclocking perception must lower the Eq. 2 cap"
    );
    // Keeping planning on the big cluster buys hover time back at an
    // identical cap: strictly less hover and mission time than all-little.
    assert!(
        split.report.hover_time_secs < little.report.hover_time_secs,
        "big-cluster planning did not reduce hover: {:.3} s vs {:.3} s",
        split.report.hover_time_secs,
        little.report.hover_time_secs,
    );
    assert!(
        split.report.mission_time_secs < little.report.mission_time_secs,
        "big-cluster planning did not shorten the mission: {:.3} s vs {:.3} s",
        split.report.mission_time_secs,
        little.report.mission_time_secs,
    );
}

#[test]
fn pipelined_missions_are_deterministic() {
    let config = || {
        exec_model_scenario(MissionConfig::new(ApplicationId::PackageDelivery))
            .with_exec_model(ExecModel::Pipelined)
            .with_node_ops(NodeOpConfig::big_little())
    };
    let a = run_mission(config());
    let b = run_mission(config());
    assert_eq!(a, b, "two identical pipelined missions diverged");
    assert!(a.success(), "pipelined mission failed: {:?}", a.failure);
}

#[test]
fn serial_is_the_default_and_unchanged() {
    // The default model must remain Serial at mission-global points so the
    // golden legacy pins (tests/golden_legacy.rs) keep guarding the
    // historical arithmetic.
    let cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery);
    assert_eq!(cfg.exec_model, ExecModel::Serial);
    assert!(cfg.node_ops.is_mission_global());
}

#[test]
fn per_node_points_scale_only_their_own_kernels() {
    let little = OperatingPoint::little_cluster(Frequency::from_ghz(0.8));
    let base = MissionConfig::fast_test(ApplicationId::PackageDelivery).with_seed(9);

    // Slowing the *planner* cluster: planning kernels slower, perception
    // kernels untouched, velocity cap untouched (planning is not on the
    // Eq. 2 reactive path).
    let mut reference = MissionContext::new(base.clone()).unwrap();
    let mut slow_plan = MissionContext::new(
        base.clone()
            .with_node_ops(NodeOpConfig::mission_global().with_planning(little)),
    )
    .unwrap();
    let ref_plan = reference.charge_kernel(KernelId::MotionPlanning);
    let slow = slow_plan.charge_kernel_at(
        KernelId::MotionPlanning,
        slow_plan.node_op_for_kernel(KernelId::MotionPlanning),
    );
    assert!(slow > ref_plan, "planner cluster did not slow planning");
    let ref_octo = reference.charge_kernel(KernelId::OctomapGeneration);
    let octo = slow_plan.charge_kernel_at(
        KernelId::OctomapGeneration,
        slow_plan.node_op_for_kernel(KernelId::OctomapGeneration),
    );
    assert_eq!(
        octo.as_secs().to_bits(),
        ref_octo.as_secs().to_bits(),
        "planner cluster must not touch perception latency"
    );
    assert_eq!(
        reference.velocity_cap().to_bits(),
        slow_plan.velocity_cap().to_bits(),
        "planner cluster must not move the Eq. 2 cap"
    );

    // Slowing the *mapping* cluster: the cap must drop (perception is the
    // reactive path).
    let mut slow_map = MissionContext::new(
        base.clone()
            .with_node_ops(NodeOpConfig::mission_global().with_mapping(little)),
    )
    .unwrap();
    assert!(
        slow_map.velocity_cap() < reference.velocity_cap(),
        "downclocked perception must lower the Eq. 2 cap"
    );

    // Reaction-irrelevant overrides — a camera point (scales nothing) or a
    // planner point — must keep the cap *bit*-identical even at a non-default
    // map resolution, where the re-summed per-kernel form of the reaction
    // latency would differ from the historical expression at the ulp level.
    let fine = |cfg: MissionConfig| cfg.with_resolution_policy(ResolutionPolicy::static_fine());
    let mut fine_reference = MissionContext::new(fine(base.clone())).unwrap();
    for ops in [
        NodeOpConfig::mission_global().with_camera(little),
        NodeOpConfig::mission_global().with_planning(little),
    ] {
        let mut overridden = MissionContext::new(fine(base.clone()).with_node_ops(ops)).unwrap();
        assert_eq!(
            fine_reference.velocity_cap().to_bits(),
            overridden.velocity_cap().to_bits(),
            "a reaction-irrelevant override ({}) moved the cap",
            ops.label()
        );
    }
}

#[test]
fn hover_to_plan_episodes_charge_the_planner_cluster() {
    // The per-node planning point must reach the applications' hover-to-plan
    // planning episodes (charged outside the executor graph), not only the
    // in-flight planning jobs: the same mission with a slower planner cluster
    // hovers strictly longer while everything else (route, cap) is identical.
    let config = |ops: NodeOpConfig| {
        exec_model_scenario(MissionConfig::new(ApplicationId::PackageDelivery)).with_node_ops(ops)
    };
    let reference = run_mission(config(NodeOpConfig::mission_global()));
    let slow_planner = run_mission(config(
        NodeOpConfig::mission_global()
            .with_planning(OperatingPoint::little_cluster(Frequency::from_ghz(0.8))),
    ));
    assert!(reference.success() && slow_planner.success());
    assert_eq!(
        reference.velocity_cap.to_bits(),
        slow_planner.velocity_cap.to_bits()
    );
    assert!(
        slow_planner.hover_time_secs > reference.hover_time_secs,
        "slow planner cluster did not lengthen hover: {:.3} s vs {:.3} s",
        slow_planner.hover_time_secs,
        reference.hover_time_secs,
    );
    assert!(slow_planner.mission_time_secs > reference.mission_time_secs);
}
