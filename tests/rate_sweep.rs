//! The perception-rate sweep: the first experiment only expressible on the
//! PR 2 node-graph executor, and its paper-predicted direction.
//!
//! The paper's Fig. 8b says perception throughput bounds safe velocity:
//! fewer frames per second mean a staler occupancy map, a larger effective
//! perception-to-actuation latency, and therefore (Eq. 2) a lower safe
//! velocity and a longer mission. Here that trend emerges from whole
//! closed-loop Package Delivery missions whose camera and OctoMap *node
//! rates* are set in configuration — no code differs between the points.

use mav_core::experiments::{perception_rate_sweep, rate_sweep_scenario};
use mav_core::{run_mission, MissionConfig, RateConfig};

use mav_compute::ApplicationId;

#[test]
fn lower_perception_rate_lowers_velocity_and_lengthens_the_mission() {
    let sweep = perception_rate_sweep(&[20.0, 1.0], rate_sweep_scenario);
    assert_eq!(sweep.len(), 2);
    let fast = &sweep[0];
    let slow = &sweep[1];
    assert!(
        fast.report.success(),
        "20 Hz run failed: {:?}",
        fast.report.failure
    );
    assert!(
        slow.report.success(),
        "1 Hz run failed: {:?}",
        slow.report.failure
    );
    // Eq. 2 with the schedule's sensing staleness: the cap must drop hard.
    assert!(
        slow.report.velocity_cap < fast.report.velocity_cap * 0.75,
        "cap did not react to the perception rate: {:.2} vs {:.2} m/s",
        slow.report.velocity_cap,
        fast.report.velocity_cap,
    );
    // And the mission-level consequence: a longer mission at lower rate.
    assert!(
        slow.report.mission_time_secs > fast.report.mission_time_secs * 1.1,
        "mission time did not lengthen: {:.1} vs {:.1} s",
        slow.report.mission_time_secs,
        fast.report.mission_time_secs,
    );
}

#[test]
fn non_legacy_schedules_are_deterministic() {
    // The multi-rate executor path must be as reproducible as the legacy
    // one: identical configuration, bit-identical report.
    let config = || {
        rate_sweep_scenario(MissionConfig::new(ApplicationId::PackageDelivery)).with_rates(
            RateConfig::legacy()
                .with_camera_fps(5.0)
                .with_mapping_hz(2.0)
                .with_replan_hz(2.0)
                .with_control_hz(20.0),
        )
    };
    let a = run_mission(config());
    let b = run_mission(config());
    assert_eq!(a, b, "two runs of the same multi-rate schedule diverged");
    assert!(a.success(), "multi-rate schedule failed: {:?}", a.failure);
}

#[test]
fn explicit_legacy_equivalent_rates_still_use_the_executor() {
    // A schedule with every rate set very high degenerates towards (but need
    // not equal) the legacy cadence; this pins down that non-legacy plumbing
    // produces sane missions rather than asserting equality.
    let cfg = rate_sweep_scenario(MissionConfig::new(ApplicationId::PackageDelivery)).with_rates(
        RateConfig::legacy()
            .with_camera_fps(100.0)
            .with_mapping_hz(100.0)
            .with_replan_hz(100.0)
            .with_control_hz(100.0),
    );
    let report = run_mission(cfg);
    assert!(
        report.success(),
        "high-rate schedule failed: {:?}",
        report.failure
    );
    assert!(report.distance_m > 40.0);
}
