//! Integration tests for the three case studies: sensor-cloud offload
//! (performance), OctoMap resolution (energy) and depth-noise injection
//! (reliability). Scenarios are scaled down so the suite stays fast in debug
//! builds; the full-size sweeps live in the `mav-bench` harness binaries.

use mavbench::compute::{ApplicationId, CloudConfig};
use mavbench::core::experiments::{noise_reliability_study, quick_config, resolution_study};
use mavbench::core::{run_mission, MissionConfig, ResolutionPolicy};

fn small(cfg: MissionConfig) -> MissionConfig {
    let mut cfg = quick_config(cfg);
    cfg.environment.extent = 24.0;
    cfg.environment.obstacle_density = cfg.environment.obstacle_density.min(1.0);
    cfg
}

#[test]
fn cloud_offload_reduces_mission_time_for_mapping() {
    let edge = run_mission(small(MissionConfig::new(ApplicationId::Mapping3D)).with_seed(4));
    let cloud = run_mission(
        small(MissionConfig::new(ApplicationId::Mapping3D))
            .with_seed(4)
            .with_cloud(CloudConfig::planning_offload()),
    );
    assert!(edge.success(), "{:?}", edge.failure);
    assert!(cloud.success(), "{:?}", cloud.failure);
    // Fig. 16: the sensor-cloud drone hovers less and finishes sooner.
    assert!(
        cloud.mission_time_secs < edge.mission_time_secs,
        "cloud {} s vs edge {} s",
        cloud.mission_time_secs,
        edge.mission_time_secs
    );
    assert!(cloud.hover_time_secs < edge.hover_time_secs);
    assert!(cloud.energy_kj() <= edge.energy_kj() * 1.02);
}

#[test]
fn dynamic_resolution_is_cheaper_than_static_fine() {
    // Fig. 19 direction on a small Package Delivery scenario: the dynamic
    // policy completes the mission at least as fast as the fine static policy
    // (it spends less compute on OctoMap updates while outdoors) and retains
    // at least as much battery.
    let rows = resolution_study(ApplicationId::PackageDelivery, |cfg| {
        small(cfg).with_seed(12)
    });
    assert_eq!(rows.len(), 3);
    let fine = rows
        .iter()
        .find(|r| r.policy.starts_with("static") && r.policy.contains("0.15"))
        .unwrap();
    let dynamic = rows
        .iter()
        .find(|r| r.policy.starts_with("dynamic"))
        .unwrap();
    assert!(dynamic.report.success(), "{:?}", dynamic.report.failure);
    assert!(fine.report.success(), "{:?}", fine.report.failure);
    assert!(
        dynamic.report.mission_time_secs <= fine.report.mission_time_secs * 1.05,
        "dynamic {} s vs fine {} s",
        dynamic.report.mission_time_secs,
        fine.report.mission_time_secs
    );
    assert!(dynamic.report.battery_remaining_pct >= fine.report.battery_remaining_pct - 1.0);
}

#[test]
fn resolution_policy_selection_logic() {
    // The dynamic policy must actually switch with density.
    let policy = ResolutionPolicy::dynamic_default();
    assert_eq!(policy.resolution_for_density(0.0), 0.80);
    assert_eq!(policy.resolution_for_density(0.2), 0.15);
    // And the octomap-cost model must make fine resolution more expensive.
    assert!(
        ResolutionPolicy::octomap_cost_multiplier(0.15)
            > ResolutionPolicy::octomap_cost_multiplier(0.8)
    );
}

#[test]
fn depth_noise_degrades_package_delivery() {
    // Table II direction: injected depth noise never improves the mission —
    // it either triggers more re-planning (longer missions) or outright
    // failures. Two runs per level keep the debug-mode runtime bounded.
    let rows = noise_reliability_study(&[0.0, 1.0], 2, small);
    assert_eq!(rows.len(), 2);
    let clean = &rows[0];
    let noisy = &rows[1];
    assert!((0.0..=1.0).contains(&clean.failure_rate));
    assert!((0.0..=1.0).contains(&noisy.failure_rate));
    let degraded = noisy.failure_rate > clean.failure_rate
        || noisy.mean_replans >= clean.mean_replans
        || noisy.mean_mission_time >= clean.mean_mission_time;
    assert!(
        degraded,
        "noise improved the mission: clean (fail {:.2}, replans {:.1}, {:.1} s) vs noisy (fail {:.2}, replans {:.1}, {:.1} s)",
        clean.failure_rate,
        clean.mean_replans,
        clean.mean_mission_time,
        noisy.failure_rate,
        noisy.mean_replans,
        noisy.mean_mission_time
    );
}
