//! Equivalence suite for the data-oriented perception core (PR 6).
//!
//! The arena octree, the incremental free-voxel index, the block-bitmask
//! `occupied_voxel_centers` and the parallel scan insertion are all *exact*
//! accelerations: every map they produce must be bit-identical to the
//! pointer-tree / tree-walk / serial references they replaced. These
//! properties pin that from the public API, so the guarantees ride in the
//! tier-1 suite alongside the PR 4 spatial-index properties.

use mav_perception::octomap::reference::ReferenceMap;
use mav_perception::{OctoMap, OctoMapConfig, PointCloud};
use mav_types::Vec3;
use proptest::prelude::*;

/// Map resolutions under test: dyadic and non-dyadic, fine and coarse (the
/// paper's 0.15 m and 0.80 m case-study endpoints included).
const RESOLUTIONS: [f64; 5] = [0.15, 0.25, 0.3, 0.5, 0.8];

fn arb_point(extent: f64) -> impl Strategy<Value = Vec3> {
    (-extent..extent, -extent..extent, 0.0..6.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The arena octree produces the same leaves as the pointer-tree oracle
    /// for arbitrary ray sequences: identical occupancy answers at every
    /// probe point, through a reresolution chain.
    #[test]
    fn arena_octree_matches_pointer_tree(
        res_idx in 0usize..RESOLUTIONS.len(),
        rays in proptest::collection::vec(arb_point(20.0), 1..32),
        queries in proptest::collection::vec(arb_point(24.0), 1..16),
        new_res_idx in 0usize..RESOLUTIONS.len(),
    ) {
        let resolution = RESOLUTIONS[res_idx % RESOLUTIONS.len()];
        let config = OctoMapConfig::with_resolution(resolution);
        let mut arena = OctoMap::new(config, 24.0);
        let mut tree = ReferenceMap::new(config, 24.0);
        let origin = Vec3::new(0.0, 0.0, 1.5);
        for endpoint in &rays {
            arena.insert_ray(&origin, endpoint);
            tree.insert_ray(&origin, endpoint);
        }
        let threshold = config.occupied_threshold;
        let reference_occupancy = |tree: &ReferenceMap, q: &Vec3| match tree.leaf_log_odds(q) {
            Some(l) if l > threshold => mav_perception::Occupancy::Occupied,
            Some(_) => mav_perception::Occupancy::Free,
            None => mav_perception::Occupancy::Unknown,
        };
        for q in &queries {
            if arena.in_domain(q) {
                prop_assert_eq!(arena.query(q), reference_occupancy(&tree, q));
            }
        }
        let new_res = RESOLUTIONS[new_res_idx % RESOLUTIONS.len()];
        let arena = arena.reresolved(new_res);
        let tree = tree.reresolved(new_res);
        for q in &queries {
            if arena.in_domain(q) {
                prop_assert_eq!(arena.query(q), reference_occupancy(&tree, q));
            }
        }
    }

    /// The incremental free-voxel index returns bit-identical centres (same
    /// order, same f64 bits) as the full-tree-walk scan it replaced.
    #[test]
    fn free_voxel_index_matches_tree_walk(
        res_idx in 0usize..RESOLUTIONS.len(),
        rays in proptest::collection::vec(arb_point(20.0), 1..32),
    ) {
        let resolution = RESOLUTIONS[res_idx % RESOLUTIONS.len()];
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 24.0);
        let origin = Vec3::new(0.0, 0.0, 1.5);
        for endpoint in &rays {
            map.insert_ray(&origin, endpoint);
        }
        let indexed = map.free_voxel_centers();
        let scanned = map.free_voxel_centers_scan();
        prop_assert_eq!(indexed.len(), scanned.len());
        for (a, b) in indexed.iter().zip(&scanned) {
            prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
            prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
            prop_assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        prop_assert_eq!(map.known_voxel_count(), map.known_voxel_count_scan());
    }

    /// The block-bitmask-backed `occupied_voxel_centers` agrees with the tree
    /// walk at dyadic resolutions (where leaf centres are exactly
    /// representable grid centres).
    #[test]
    fn occupied_centers_match_tree_walk_at_dyadic_resolution(
        dyadic in 0usize..2,
        rays in proptest::collection::vec(arb_point(20.0), 1..32),
    ) {
        let resolution = [0.25, 0.5][dyadic];
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 24.0);
        let origin = Vec3::new(0.0, 0.0, 1.5);
        for endpoint in &rays {
            map.insert_ray(&origin, endpoint);
        }
        prop_assert_eq!(map.occupied_voxel_centers(), map.occupied_voxel_centers_scan());
    }

    /// Parallel scan insertion is bit-identical to the serial path at every
    /// thread count: same logical tree, same counters, same free-voxel
    /// centres, same update count.
    #[test]
    fn parallel_insertion_bit_identical_across_thread_counts(
        res_idx in 0usize..RESOLUTIONS.len(),
        points in proptest::collection::vec(arb_point(20.0), 1..48),
    ) {
        let resolution = RESOLUTIONS[res_idx % RESOLUTIONS.len()];
        let config = OctoMapConfig::with_resolution(resolution);
        let cloud = PointCloud::new(Vec3::new(0.0, 0.0, 1.5), points);
        let mut serial = OctoMap::new(config, 24.0);
        serial.insert_point_cloud(&cloud);
        for threads in [1usize, 2, 3, 4, 8] {
            let mut parallel = OctoMap::new(config, 24.0);
            parallel.insert_point_cloud_parallel(&cloud, threads);
            prop_assert_eq!(&parallel, &serial, "map diverged at {} threads", threads);
            prop_assert_eq!(parallel.update_count(), serial.update_count());
            prop_assert_eq!(parallel.free_voxel_centers(), serial.free_voxel_centers());
            prop_assert_eq!(parallel.occupied_voxel_count(), serial.occupied_voxel_count());
        }
    }
}
