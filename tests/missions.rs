//! Integration tests: every benchmark application runs a full closed-loop
//! mission through the public facade crate.

use mavbench::compute::{ApplicationId, KernelId};
use mavbench::core::{run_mission, MissionConfig, MissionReport};

fn quick(app: ApplicationId, seed: u64) -> MissionConfig {
    let mut cfg = MissionConfig::fast_test(app).with_seed(seed);
    cfg.environment.extent = 28.0;
    cfg.environment.obstacle_density = cfg.environment.obstacle_density.min(1.2);
    cfg
}

fn sanity(report: &MissionReport) {
    assert!(report.mission_time_secs > 0.0);
    assert!(report.total_energy.as_joules() > 0.0);
    assert!(report.rotor_energy >= report.compute_energy);
    assert!(report.battery_remaining_pct <= 100.0 && report.battery_remaining_pct >= 0.0);
    assert!(report.average_velocity >= 0.0);
    assert!(report.kernel_timer.grand_total().as_secs() >= 0.0);
}

#[test]
fn scanning_mission_end_to_end() {
    let report = run_mission(quick(ApplicationId::Scanning, 11));
    sanity(&report);
    assert!(report.success(), "{:?}", report.failure);
    assert!(report.distance_m > 80.0);
    assert!(report.kernel_timer.invocations(KernelId::LawnmowerPlanning) >= 1);
}

#[test]
fn package_delivery_mission_end_to_end() {
    let report = run_mission(quick(ApplicationId::PackageDelivery, 9));
    sanity(&report);
    assert!(report.success(), "{:?}", report.failure);
    assert!(report.kernel_timer.invocations(KernelId::MotionPlanning) >= 2);
    assert!(report.kernel_timer.invocations(KernelId::OctomapGeneration) >= 2);
    assert!(
        report.hover_time_secs > 0.0,
        "delivery must hover while planning"
    );
}

#[test]
fn mapping_mission_end_to_end() {
    let report = run_mission(quick(ApplicationId::Mapping3D, 4));
    sanity(&report);
    assert!(report.success(), "{:?}", report.failure);
    assert!(report.mapped_volume > 50.0);
    assert!(
        report
            .kernel_timer
            .invocations(KernelId::FrontierExploration)
            >= 1
    );
}

#[test]
fn search_and_rescue_mission_end_to_end() {
    let mut cfg = quick(ApplicationId::SearchAndRescue, 6);
    cfg.environment.people = 5;
    let report = run_mission(cfg);
    sanity(&report);
    assert!(report.kernel_timer.invocations(KernelId::ObjectDetection) >= 1);
    assert!(report.kernel_timer.invocations(KernelId::OctomapGeneration) >= 1);
}

#[test]
fn aerial_photography_mission_end_to_end() {
    let mut cfg = quick(ApplicationId::AerialPhotography, 8);
    cfg.environment.obstacle_density = 0.2;
    cfg.time_budget_secs = 60.0;
    let report = run_mission(cfg);
    sanity(&report);
    assert!(report.success(), "{:?}", report.failure);
    assert!(report.detections >= 1);
    assert!(report.kernel_timer.invocations(KernelId::TrackingRealTime) >= 5);
}

#[test]
fn missions_are_reproducible_for_a_fixed_seed() {
    let a = run_mission(quick(ApplicationId::PackageDelivery, 33));
    let b = run_mission(quick(ApplicationId::PackageDelivery, 33));
    assert_eq!(a.mission_time_secs, b.mission_time_secs);
    assert_eq!(a.distance_m, b.distance_m);
    assert_eq!(a.replans, b.replans);
    assert_eq!(a.total_energy, b.total_energy);
}
