//! Wire-API round-trip properties: `from_json(to_json(c)) == c` for every
//! config type the `mav-server` job spec carries.
//!
//! The job cache keys on the canonical JSON of the parsed spec, so the wire
//! encoding must be lossless: any config the simulator can run must survive
//! a trip through `ToJson` → text → `Json::parse` → `FromJson` unchanged.
//! Rust's shortest-round-trip float formatting makes this exact for `f64`
//! fields (whole floats render as integers and come back through `as_f64`),
//! and these properties pin that across randomized, validate()-passing
//! configs rather than a few handpicked ones.

use mavbench::compute::{ApplicationId, OperatingPoint};
use mavbench::core::{
    BrakePolicy, DegradationConfig, ExecModel, FaultPlan, MissionConfig, NodeOpConfig, RateConfig,
    ReplanMode, ResolutionPolicy, ScenarioGenerator,
};
use mavbench::types::{Frequency, FromJson, Json, ToJson};
use proptest::prelude::*;

/// Full text round trip, exactly what the server does to a stored spec:
/// render, parse the rendered text back, decode.
fn round_trip<T: ToJson + FromJson>(value: &T) -> Result<T, String> {
    let text = value.to_json().to_string_compact();
    let json = Json::parse(&text).map_err(|e| e.to_string())?;
    T::from_json(&json)
}

fn point(cores: u32, ghz: f64) -> OperatingPoint {
    OperatingPoint::new(cores, Frequency::from_ghz(ghz))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rate_config_round_trips(
        mask in 0usize..16,
        cam in 0.5f64..120.0,
        map in 0.2f64..60.0,
        plan in 0.1f64..30.0,
        ctrl in 1.0f64..200.0,
    ) {
        let rates = RateConfig {
            camera_fps: (mask & 1 != 0).then_some(cam),
            mapping_hz: (mask & 2 != 0).then_some(map),
            replan_hz: (mask & 4 != 0).then_some(plan),
            control_hz: (mask & 8 != 0).then_some(ctrl),
        };
        prop_assert_eq!(round_trip(&rates), Ok(rates));
    }

    #[test]
    fn node_op_config_round_trips(
        mask in 0usize..16,
        cores in (1u32..=8, 1u32..=8, 1u32..=8, 1u32..=8),
        ghz in (0.3f64..3.0, 0.3f64..3.0, 0.3f64..3.0, 0.3f64..3.0),
    ) {
        let ops = NodeOpConfig {
            camera: (mask & 1 != 0).then(|| point(cores.0, ghz.0)),
            mapping: (mask & 2 != 0).then(|| point(cores.1, ghz.1)),
            planning: (mask & 4 != 0).then(|| point(cores.2, ghz.2)),
            control: (mask & 8 != 0).then(|| point(cores.3, ghz.3)),
        };
        prop_assert_eq!(round_trip(&ops), Ok(ops));
    }

    #[test]
    fn fault_plan_round_trips(
        cam_drop in 0.0f64..1.0,
        frames in 1u32..=12,
        noise_burst in 0.0f64..1.0,
        burst_std in 0.0f64..2.0,
        spike in 0.0f64..1.0,
        spike_factor in 1.0f64..8.0,
        plan_factor in 1.0f64..4.0,
        topic_drop in 0.0f64..1.0,
        fade in 0.0f64..0.9,
    ) {
        let plan = FaultPlan {
            camera_dropout: cam_drop,
            camera_dropout_frames: frames,
            noise_burst,
            noise_burst_std: burst_std,
            kernel_spike: spike,
            kernel_spike_factor: spike_factor,
            plan_timeout_factor: plan_factor,
            topic_drop,
            battery_fade: fade,
        };
        prop_assert_eq!(round_trip(&plan), Ok(plan));
    }

    #[test]
    fn degradation_config_round_trips(
        watchdog in 0u8..2,
        grace in 1.0f64..10.0,
        has_timeout in 0u8..2,
        timeout in 0.1f64..30.0,
        brake in 0u8..2,
        splicing in 0u8..2,
    ) {
        let degradation = DegradationConfig {
            perception_watchdog: watchdog == 1,
            stale_grace_factor: grace,
            plan_timeout_secs: (has_timeout == 1).then_some(timeout),
            brake_policy: if brake == 1 { BrakePolicy::Graded } else { BrakePolicy::Binary },
            plan_splicing: splicing == 1,
        };
        prop_assert_eq!(round_trip(&degradation), Ok(degradation));
    }

    #[test]
    fn mission_config_round_trips(
        app_idx in 0usize..5,
        seed in 0u64..1_000_000,
        noise in 0.0f64..0.5,
        budget in 30.0f64..3600.0,
        stop in 1.0f64..30.0,
        cruise in 0.5f64..15.0,
        dt in 0.01f64..0.2,
        threads in 1usize..=4,
        replan in 0u8..2,
        exec in 0u8..2,
        resolution in 0.1f64..1.0,
        cam_fps in 2.0f64..60.0,
        rate_on in 0u8..2,
        spike in 0.0f64..0.5,
        grace in 1.0f64..5.0,
    ) {
        let mut config = MissionConfig::new(ApplicationId::all()[app_idx])
            .with_seed(seed)
            .with_depth_noise(noise)
            .with_resolution_policy(ResolutionPolicy::Static { resolution })
            .with_replan_mode(if replan == 1 { ReplanMode::PlanInMotion } else { ReplanMode::HoverToPlan })
            .with_exec_model(if exec == 1 { ExecModel::Pipelined } else { ExecModel::Serial })
            .with_map_insert_threads(threads)
            .with_fault_plan(FaultPlan { kernel_spike: spike, ..FaultPlan::none() })
            .with_degradation(DegradationConfig { stale_grace_factor: grace, ..DegradationConfig::off() });
        config.time_budget_secs = budget;
        config.stopping_distance = stop;
        config.cruise_velocity = cruise;
        config.physics_dt = dt;
        if rate_on == 1 {
            config.rates.camera_fps = Some(cam_fps);
        }
        prop_assert!(config.validate().is_ok(), "draw must be valid: {:?}", config.validate());
        prop_assert_eq!(round_trip(&config), Ok(config));
    }

    /// The canonical text itself is a fixed point: encoding the decoded
    /// config reproduces the exact bytes the cache key is hashed from.
    #[test]
    fn canonical_text_is_a_fixed_point(app_idx in 0usize..5, seed in 0u64..1_000_000) {
        let config = MissionConfig::new(ApplicationId::all()[app_idx]).with_seed(seed);
        let text = config.to_json().to_string_compact();
        let reparsed = MissionConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(reparsed.to_json().to_string_compact(), text);
    }
}

/// Dynamic resolution policies and the sweep scenario generator round-trip
/// too (deterministic spot checks; their field spaces are small).
#[test]
fn dynamic_resolution_and_scenario_generator_round_trip() {
    let policy = ResolutionPolicy::Dynamic {
        outdoor: 0.8,
        indoor: 0.15,
        density_threshold: 0.02,
    };
    assert_eq!(round_trip(&policy), Ok(policy));

    let mut generator = ScenarioGenerator::new(ApplicationId::Mapping3D, 7);
    generator.extents = vec![14.0, 30.0];
    generator.noise_levels = vec![0.0, 0.25];
    generator.replan_modes = vec![ReplanMode::HoverToPlan, ReplanMode::PlanInMotion];
    assert_eq!(round_trip(&generator), Ok(generator));
}

/// Operating points survive both wire forms: the structured object and the
/// CLI string (`big@2.2`) decode to the same point, and the structured form
/// is the lossless one the canonical encoding uses.
#[test]
fn operating_point_wire_forms_agree() {
    let p = point(4, 2.2);
    assert_eq!(round_trip(&p), Ok(p));
    let from_cli = OperatingPoint::from_json(&Json::String("big@2.2".into())).unwrap();
    assert_eq!(from_cli, p);
}
