//! Agricultural scanning: sweep a farm with a lawnmower pattern and show why
//! compute scaling barely matters for this workload (the paper's Fig. 10
//! observation).
//!
//! ```bash
//! cargo run --release --example scanning_farm
//! ```

use mavbench::compute::{ApplicationId, OperatingPoint};
use mavbench::core::{run_mission, MissionConfig};

fn run_at(point: OperatingPoint) -> mavbench::core::MissionReport {
    let mut config = MissionConfig::fast_test(ApplicationId::Scanning)
        .with_operating_point(point)
        .with_seed(11);
    config.environment.extent = 35.0;
    run_mission(config)
}

fn main() {
    println!("scanning the same farm at the fastest and slowest TX2 operating points\n");
    let fast = run_at(OperatingPoint::reference());
    let slow = run_at(OperatingPoint::slowest());

    println!("{:<28} {:>12} {:>12}", "", "4c @ 2.2 GHz", "2c @ 0.8 GHz");
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "mission time (s)", fast.mission_time_secs, slow.mission_time_secs
    );
    println!(
        "{:<28} {:>12.2} {:>12.2}",
        "average velocity (m/s)", fast.average_velocity, slow.average_velocity
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "energy (kJ)",
        fast.energy_kj(),
        slow.energy_kj()
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "distance swept (m)", fast.distance_m, slow.distance_m
    );

    let time_ratio = slow.mission_time_secs / fast.mission_time_secs;
    println!(
        "\nmission-time ratio slow/fast = {time_ratio:.3} — scanning plans once, so compute \
         scaling is amortised over the whole sweep (Fig. 10 of the paper shows the same flat heat map)."
    );
}
