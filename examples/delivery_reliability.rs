//! Package delivery under sensor noise: the reliability case study of the
//! paper (Table II) as a runnable scenario. Gaussian noise injected into the
//! depth camera inflates obstacles, forces extra re-planning and stretches the
//! mission.
//!
//! ```bash
//! cargo run --release --example delivery_reliability
//! ```

use mavbench::compute::ApplicationId;
use mavbench::core::{run_mission, MissionConfig};

fn main() {
    println!("package delivery with increasing depth-image noise\n");
    println!(
        "{:<16} {:>10} {:>12} {:>14} {:>10}",
        "noise std (m)", "outcome", "re-plans", "mission (s)", "energy (kJ)"
    );
    for noise in [0.0, 0.5, 1.0, 1.5] {
        let mut config = MissionConfig::fast_test(ApplicationId::PackageDelivery)
            .with_seed(21)
            .with_depth_noise(noise);
        config.environment.extent = 30.0;
        config.environment.obstacle_density = 1.2;
        let report = run_mission(config);
        println!(
            "{:<16.1} {:>10} {:>12} {:>14.1} {:>10.1}",
            noise,
            if report.success() { "success" } else { "FAIL" },
            report.replans,
            report.mission_time_secs,
            report.energy_kj()
        );
    }
    println!(
        "\nthe paper's Table II reports the same trend: more noise, more re-planning, longer \
         missions, and outright failures at 1.5 m."
    );
}
