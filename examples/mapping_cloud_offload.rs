//! 3D mapping with and without sensor-cloud support: the performance case
//! study of the paper (Fig. 16). Offloading the planning stage to a faster
//! machine over a gigabit link cuts hover time and therefore mission time.
//!
//! ```bash
//! cargo run --release --example mapping_cloud_offload
//! ```

use mavbench::compute::{ApplicationId, CloudConfig, KernelId};
use mavbench::core::{run_mission, MissionConfig};

fn main() {
    let base = |cloud: Option<CloudConfig>| {
        let mut config = MissionConfig::fast_test(ApplicationId::Mapping3D).with_seed(4);
        config.environment.extent = 28.0;
        if let Some(c) = cloud {
            config = config.with_cloud(c);
        }
        config
    };

    println!("exploring the same unknown environment fully on the edge vs with cloud planning\n");
    let edge = run_mission(base(None));
    let cloud = run_mission(base(Some(CloudConfig::planning_offload())));

    let planning_time = |report: &mavbench::core::MissionReport| {
        report
            .kernel_timer
            .total(KernelId::FrontierExploration)
            .as_secs()
            + report
                .kernel_timer
                .total(KernelId::MotionPlanning)
                .as_secs()
            + report.kernel_timer.total(KernelId::PathSmoothing).as_secs()
    };

    println!("{:<26} {:>12} {:>14}", "", "edge (TX2)", "sensor-cloud");
    println!(
        "{:<26} {:>12.1} {:>14.1}",
        "mission time (s)", edge.mission_time_secs, cloud.mission_time_secs
    );
    println!(
        "{:<26} {:>12.1} {:>14.1}",
        "planning time (s)",
        planning_time(&edge),
        planning_time(&cloud)
    );
    println!(
        "{:<26} {:>12.1} {:>14.1}",
        "hover time (s)", edge.hover_time_secs, cloud.hover_time_secs
    );
    println!(
        "{:<26} {:>12.1} {:>14.1}",
        "energy (kJ)",
        edge.energy_kj(),
        cloud.energy_kj()
    );
    println!(
        "{:<26} {:>12.1} {:>14.1}",
        "mapped volume (m^3)", edge.mapped_volume, cloud.mapped_volume
    );

    println!(
        "\nmission-time speed-up from the cloud: {:.2}X (the paper reports up to 2X / a 50% \
         reduction for the same offload).",
        edge.mission_time_secs / cloud.mission_time_secs.max(1.0)
    );
}
