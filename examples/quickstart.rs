//! Quickstart: run one Package Delivery mission end to end and print its
//! quality-of-flight report.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mavbench::compute::{ApplicationId, KernelId};
use mavbench::core::{run_mission, MissionConfig};

fn main() {
    // A scaled-down urban world so the example finishes in a few seconds even
    // in debug builds. Drop `fast_test` for the full-size scenario.
    let config = MissionConfig::fast_test(ApplicationId::PackageDelivery).with_seed(9);
    println!(
        "running: {} at {}",
        config.application, config.operating_point
    );

    let report = run_mission(config);

    println!("\n=== mission report ===");
    println!("{report}");
    println!(
        "outcome:          {}",
        if report.success() {
            "success"
        } else {
            "failure"
        }
    );
    println!("mission time:     {:.1} s", report.mission_time_secs);
    println!("hover time:       {:.1} s", report.hover_time_secs);
    println!("distance:         {:.1} m", report.distance_m);
    println!("average velocity: {:.2} m/s", report.average_velocity);
    println!("velocity cap:     {:.2} m/s (Eq. 2)", report.velocity_cap);
    println!("total energy:     {:.1} kJ", report.energy_kj());
    println!(
        "  rotors:         {:.1} kJ",
        report.rotor_energy.as_kilojoules()
    );
    println!(
        "  compute:        {:.1} kJ",
        report.compute_energy.as_kilojoules()
    );
    println!("battery left:     {:.0} %", report.battery_remaining_pct);
    println!("re-plans:         {}", report.replans);

    println!("\n=== kernel time breakdown ===");
    for (kernel, total) in report.kernel_timer.totals() {
        println!(
            "{:<10} {:>8.1} ms total over {} invocations",
            kernel.short_name(),
            total.as_millis(),
            report.kernel_timer.invocations(*kernel)
        );
    }
    let bottleneck = report.kernel_timer.bottleneck();
    println!(
        "compute bottleneck: {:?}",
        bottleneck.map(|k| k.short_name())
    );
    assert!(report.kernel_timer.invocations(KernelId::OctomapGeneration) > 0);
}
