//! Search and rescue in a disaster site: frontier exploration plus object
//! detection until a person is found.
//!
//! ```bash
//! cargo run --release --example search_and_rescue
//! ```

use mavbench::compute::{ApplicationId, KernelId, OperatingPoint};
use mavbench::core::{run_mission, MissionConfig};

fn main() {
    println!("searching a rubble field for people at two operating points\n");
    for point in [OperatingPoint::reference(), OperatingPoint::slowest()] {
        let mut config = MissionConfig::fast_test(ApplicationId::SearchAndRescue)
            .with_operating_point(point)
            .with_seed(6);
        config.environment.extent = 28.0;
        config.environment.people = 5;
        let report = run_mission(config);
        println!("operating point {}", point);
        println!(
            "  outcome:        {}",
            if report.success() {
                "person found"
            } else {
                "not found"
            }
        );
        println!("  mission time:   {:.1} s", report.mission_time_secs);
        println!("  hover time:     {:.1} s", report.hover_time_secs);
        println!("  energy:         {:.1} kJ", report.energy_kj());
        println!(
            "  detections run: {}",
            report.kernel_timer.invocations(KernelId::ObjectDetection)
        );
        println!("  area mapped:    {:.0} m^3", report.mapped_volume);
        println!();
    }
    println!(
        "more compute shortens hovering between exploration hops and raises the safe velocity, \
         which is exactly the Fig. 13 trend in the paper."
    );
}
