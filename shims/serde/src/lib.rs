//! Offline stand-in for `serde`.
//!
//! The workspace builds without network access, so the real serde cannot be
//! fetched. Application code only *derives* `Serialize`/`Deserialize` (no code
//! path in this repository calls a serde serializer); actual JSON encoding is
//! done by the hand-rolled `mav_types::json` module. The traits here are
//! therefore markers, blanket-implemented for every type so that derives and
//! trait bounds keep compiling unchanged when the real crate is swapped back
//! in.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};
