//! No-op derive macros standing in for `serde_derive`.
//!
//! This workspace builds in an offline environment without crates.io access,
//! so the real serde cannot be vendored. The `serde` shim crate defines
//! `Serialize`/`Deserialize` as blanket-implemented marker traits; these
//! derives therefore only need to *accept* the syntax (including `#[serde(..)]`
//! field attributes) and emit no code. Swapping the shims for the real crates
//! later requires no source changes outside the manifests.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and produces no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and produces no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
