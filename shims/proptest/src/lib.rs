//! Offline stand-in for `proptest`.
//!
//! Supports the subset the MAVBench test-suite uses: the `proptest!` macro
//! with an optional `#![proptest_config(..)]` header, range strategies over
//! floats and integers, tuple strategies, `prop_map`, `collection::vec`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` and `prop_assume!`.
//!
//! Differences from the real crate: case generation is *deterministic* (the
//! RNG is seeded from the test name and case index, so failures reproduce
//! without a persistence file) and failing inputs are reported but not
//! shrunk.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Result type produced by a `proptest!` case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the generated inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Per-test configuration (`with_cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy_impls!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy_impls {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy_impls! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs the accepted-case loop for one property. Used by `proptest!`.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Deterministic seed per test name so failures reproduce directly.
    let name_hash = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(16).max(64);
    while accepted < config.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest-shim: property `{name}` rejected too many inputs \
                 ({accepted}/{} accepted after {attempts} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::seed_from_u64(
            name_hash ^ (attempts as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest-shim: property `{name}` failed at attempt {attempts}: {message}")
            }
        }
        attempts += 1;
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?}): {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest!` test-definition macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of `proptest!` — one plain `#[test]` fn per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                $( let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng); )+
                let __proptest_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __proptest_outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __proptest_outcome {
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                            "{message}\n  inputs: {}", __proptest_inputs
                        )))
                    }
                    other => other,
                }
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: f64,
        y: f64,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range and tuple strategies stay in bounds; prop_map works.
        #[test]
        fn ranges_and_maps(v in 0.0f64..10.0, n in 1u32..=4, p in (0.0f64..1.0, 2.0f64..3.0).prop_map(|(x, y)| Point { x, y })) {
            prop_assert!((0.0..10.0).contains(&v));
            prop_assert!((1..=4).contains(&n));
            prop_assert!(p.x < 1.0 && p.y >= 2.0);
            prop_assert_ne!(p.x, p.y);
        }

        /// Assumptions reject without failing.
        #[test]
        fn assumptions_reject(v in 0u64..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        /// Collection strategies honour the length range.
        #[test]
        fn vec_lengths(xs in crate::collection::vec(-1.0f64..1.0, 3..7)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    #[should_panic(expected = "failed at attempt")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(v in 0u32..4) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
