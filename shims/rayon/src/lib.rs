//! Offline stand-in for `rayon` implementing the subset this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` plus
//! `ThreadPoolBuilder::new().num_threads(n).build()?.install(..)`.
//!
//! Work is distributed over `std::thread::scope` workers pulling indices from
//! an atomic counter, and results are returned in input order, so a map is
//! deterministic regardless of the thread count — the property the
//! `SweepRunner` determinism tests rely on. A panic in any closure propagates
//! to the caller, as with real rayon.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread count installed on the current thread by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|installed| {
        installed.get().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (host parallelism) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count; `0` means the host default, like rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let default = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let n = match self.num_threads {
            Some(0) | None => default,
            Some(n) => n,
        };
        Ok(ThreadPool {
            num_threads: n.max(1),
        })
    }
}

/// A logical thread pool: workers are spawned per operation (scoped threads),
/// the pool only carries the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed for parallel
    /// operations performed inside it. The previous value is restored even
    /// when `f` panics.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let previous = self.0;
                INSTALLED_THREADS.with(|installed| installed.set(previous));
            }
        }
        let _restore =
            INSTALLED_THREADS.with(|installed| Restore(installed.replace(Some(self.num_threads))));
        f()
    }

    /// The configured width of the pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// In-order parallel map: the core primitive behind the iterator facade.
pub fn parallel_map_slice<'a, T: Sync, R: Send>(
    items: &'a [T],
    threads: usize,
    f: impl Fn(&'a T) -> R + Sync,
) -> Vec<R> {
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    local.push((index, f(&items[index])));
                }
                gathered.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = gathered.into_inner().unwrap();
    pairs.sort_by_key(|&(index, _)| index);
    pairs.into_iter().map(|(_, value)| value).collect()
}

/// In-order parallel map over mutable references: the slice is split into one
/// contiguous chunk per worker (no work stealing), each chunk is processed
/// strictly in order on its own scoped thread, and the per-chunk results are
/// re-concatenated in chunk order — so the output order (and any per-element
/// mutation) is identical to a serial `iter_mut().map(..)` pass.
pub fn parallel_map_slice_mut<'a, T: Send, R: Send>(
    items: &'a mut [T],
    threads: usize,
    f: impl Fn(&'a mut T) -> R + Sync,
) -> Vec<R> {
    let len = items.len();
    let workers = threads.clamp(1, len.max(1));
    if workers <= 1 || len <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk_len = len.div_ceil(workers);
    let gathered: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|scope| {
        for (index, chunk) in items.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            let gathered = &gathered;
            scope.spawn(move || {
                let results: Vec<R> = chunk.iter_mut().map(f).collect();
                gathered.lock().unwrap().push((index, results));
            });
        }
    });
    let mut chunks = gathered.into_inner().unwrap();
    chunks.sort_by_key(|&(index, _)| index);
    chunks
        .into_iter()
        .flat_map(|(_, results)| results)
        .collect()
}

/// Parallel iterator over a slice, created by
/// [`IntoParallelRefIterator::par_iter`].
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` (lazily; runs on `collect`).
    pub fn map<R, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// The `par_iter().map(..)` adapter.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Executes the map across [`current_num_threads`] workers, preserving
    /// input order, and collects the results.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(parallel_map_slice(
            self.slice,
            current_num_threads(),
            self.f,
        ))
    }
}

/// Parallel iterator over mutable references, created by
/// [`IntoParallelRefMutIterator::par_iter_mut`].
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Maps every element through `f` (lazily; runs on `collect`).
    pub fn map<R, F: Fn(&'a mut T) -> R + Sync>(self, f: F) -> ParMapMut<'a, T, F> {
        ParMapMut {
            slice: self.slice,
            f,
        }
    }

    /// Runs `f` on every element across [`current_num_threads`] workers.
    pub fn for_each<F: Fn(&'a mut T) + Sync>(self, f: F) {
        parallel_map_slice_mut(self.slice, current_num_threads(), f);
    }
}

/// The `par_iter_mut().map(..)` adapter.
pub struct ParMapMut<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<'a, T: Send, R: Send, F: Fn(&'a mut T) -> R + Sync> ParMapMut<'a, T, F> {
    /// Executes the map across [`current_num_threads`] workers, preserving
    /// input order, and collects the results.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(parallel_map_slice_mut(
            self.slice,
            current_num_threads(),
            self.f,
        ))
    }
}

/// Parallel iterator over contiguous sub-slices, created by
/// [`ParallelSlice::par_chunks`].
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Maps every chunk through `f` (lazily; runs on `collect`).
    pub fn map<R, F: Fn(&'a [T]) -> R + Sync>(self, f: F) -> ParChunksMap<'a, T, F> {
        ParChunksMap {
            slice: self.slice,
            chunk_size: self.chunk_size,
            f,
        }
    }
}

/// The `par_chunks(..).map(..)` adapter.
pub struct ParChunksMap<'a, T, F> {
    slice: &'a [T],
    chunk_size: usize,
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a [T]) -> R + Sync> ParChunksMap<'a, T, F> {
    /// Executes the map across [`current_num_threads`] workers, preserving
    /// chunk order, and collects the per-chunk results.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let chunks: Vec<&'a [T]> = self.slice.chunks(self.chunk_size).collect();
        let f = self.f;
        C::from(parallel_map_slice(
            &chunks,
            current_num_threads(),
            move |chunk| f(chunk),
        ))
    }
}

/// Extension trait adding `par_chunks` to slices and vectors, mirroring
/// `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Returns a parallel iterator over contiguous chunks of `chunk_size`
    /// elements (the last chunk may be shorter), in slice order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero, like the real crate.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size != 0, "chunk_size must not be zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        self.as_slice().par_chunks(chunk_size)
    }
}

/// Extension trait adding `par_iter` to slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Extension trait adding `par_iter_mut` to slices and vectors.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Returns a parallel iterator over mutable references.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

/// The usual rayon prelude import.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = items.par_iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let parallel: Vec<u64> =
                pool.install(|| items.par_iter().map(|x| x * x).collect::<Vec<_>>());
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let mapped: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(mapped.is_empty());
        let one = [41u32];
        let mapped: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(mapped, vec![42]);
    }

    #[test]
    fn mutable_map_mutates_every_element_in_order() {
        let mut items: Vec<u64> = (0..97).collect();
        let expected_results: Vec<u64> = items.iter().map(|x| x * 2).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let results: Vec<u64> = pool.install(|| {
            items
                .par_iter_mut()
                .map(|x| {
                    *x += 1;
                    (*x - 1) * 2
                })
                .collect::<Vec<_>>()
        });
        assert_eq!(results, expected_results);
        assert_eq!(items, (1..98).collect::<Vec<u64>>());
        // for_each over an empty slice is a no-op.
        let mut empty: Vec<u64> = Vec::new();
        empty.par_iter_mut().for_each(|x| *x += 1);
        let mut one = [5u64];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one, [6]);
    }

    #[test]
    fn par_chunks_preserves_chunk_order_and_coverage() {
        let items: Vec<u32> = (0..103).collect();
        let serial: Vec<u32> = items.chunks(10).map(|c| c.iter().sum()).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let parallel: Vec<u32> = pool.install(|| {
                items
                    .par_chunks(10)
                    .map(|c| c.iter().sum())
                    .collect::<Vec<u32>>()
            });
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // A chunk size larger than the slice yields one chunk.
        let whole: Vec<usize> = items.par_chunks(1000).map(|c| c.len()).collect();
        assert_eq!(whole, vec![103]);
    }

    #[test]
    #[should_panic]
    fn par_chunks_rejects_zero_chunk_size() {
        let items = [1u32, 2, 3];
        let _ = items.par_chunks(0);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.install(|| {
                items
                    .par_iter()
                    .map(|x| if *x == 7 { panic!("boom") } else { *x })
                    .collect::<Vec<_>>()
            })
        });
        assert!(result.is_err());
    }
}
