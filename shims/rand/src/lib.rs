//! Offline stand-in for `rand`, implementing the subset this workspace uses:
//! [`RngCore`], the [`Rng`] extension trait with `gen_range` over float and
//! integer ranges, and `gen_bool`. Generators live in the `rand_chacha` shim.
//!
//! The numeric conversions mirror the real crate's approach (53-bit mantissa
//! fill for unit floats, widening-multiply range reduction for integers) so
//! distributions are unbiased, but the output streams are NOT bit-compatible
//! with the real `rand`; all determinism guarantees in this repository are
//! relative to these shims.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform value in `[0, 1)` built from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] accepts for a value type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Map 53 uniform bits onto [0, 1] (denominator 2^53 - 1).
                let u = ((rng.next_u64() >> 11) as f64
                    * (1.0 / ((1u64 << 53) - 1) as f64)) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range_impls!(f32, f64);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A weak but spread-out generator good enough for the unit tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = rng.gen_range(0.5f64..=1.5);
            assert!((0.5..=1.5).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = Counter(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v = rng.gen_range(0u32..4);
            seen[v as usize] = true;
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Counter(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
