//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the `mav-bench` benches use — `Criterion`,
//! `criterion_group!`/`criterion_main!`, `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box` — as a
//! genuine (if statistically simple) wall-clock harness: per benchmark it
//! warms up, collects timed samples, and reports min/median/mean. Every run
//! also appends machine-readable results to
//! `target/shim-criterion/<bench-binary>.json` so baselines can be recorded.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named after its parameter value, as in real criterion.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// A `function_name/parameter` id.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    target_samples: usize,
}

impl Bencher<'_> {
    /// Times `routine`, collecting up to the configured number of samples but
    /// never spending more than ~2 s per benchmark.
    // Wall-clock reads are this shim's whole purpose (mirroring criterion);
    // nothing measured here feeds simulation state.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        const TIME_CAP: Duration = Duration::from_secs(2);
        // Warm-up (also primes caches/allocators).
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < TIME_CAP {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Measurement {
    id: String,
    samples: usize,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
}

/// The top-level harness state.
pub struct Criterion {
    sample_size: usize,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

fn run_one(
    results: &mut Vec<Measurement>,
    sample_size: usize,
    id: String,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut samples = Vec::with_capacity(sample_size);
    f(&mut Bencher {
        samples: &mut samples,
        target_samples: sample_size,
    });
    samples.sort();
    let n = samples.len().max(1);
    let min = samples.first().copied().unwrap_or_default();
    let median = samples.get(n / 2).copied().unwrap_or(min);
    let total: Duration = samples.iter().sum();
    let measurement = Measurement {
        id,
        samples: samples.len(),
        min_ns: min.as_nanos(),
        median_ns: median.as_nanos(),
        mean_ns: total.as_nanos() / n as u128,
    };
    println!(
        "{:<44} samples: {:>3}  min: {}  median: {}  mean: {}",
        measurement.id,
        measurement.samples,
        format_ns(measurement.min_ns),
        format_ns(measurement.median_ns),
        format_ns(measurement.mean_ns),
    );
    results.push(measurement);
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:>8.3} s ", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:>8.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:>8.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns:>8} ns")
    }
}

impl Criterion {
    /// Builds the harness, ignoring harness CLI flags cargo passes through.
    pub fn from_args() -> Self {
        Criterion::default()
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        run_one(&mut self.results, self.sample_size, id, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Prints the trailing summary and writes the JSON record. Called by
    /// [`criterion_main!`].
    pub fn finalize(&self) {
        eprintln!(
            "[criterion-shim] {} benchmarks measured",
            self.results.len()
        );
        if let Err(err) = self.write_json() {
            eprintln!("[criterion-shim] could not write JSON results: {err}");
        }
    }

    fn write_json(&self) -> std::io::Result<()> {
        let binary = std::env::args()
            .next()
            .map(|p| {
                let stem = std::path::Path::new(&p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "bench".to_string());
                // Strip the -<hash> suffix cargo appends to bench binaries.
                match stem.rfind('-') {
                    Some(pos) if stem[pos + 1..].chars().all(|c| c.is_ascii_hexdigit()) => {
                        stem[..pos].to_string()
                    }
                    _ => stem,
                }
            })
            .unwrap_or_else(|| "bench".to_string());
        // cargo bench runs with cwd = package dir; CRITERION_HOME (honoured
        // like the real crate) lets callers collect results in one place.
        let dir = std::env::var_os("CRITERION_HOME")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::Path::new("target").join("shim-criterion"));
        std::fs::create_dir_all(&dir)?;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{binary}\",\n  \"results\": [\n"));
        for (i, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}{}\n",
                m.id.replace('"', "'"),
                m.samples,
                m.min_ns,
                m.median_ns,
                m.mean_ns,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(dir.join(format!("{binary}.json")), out)
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&mut self.criterion.results, samples, id, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&mut self.criterion.results, samples, id, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the bench `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].samples >= 1);
    }

    #[test]
    fn groups_prefix_ids_and_respect_sample_size() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(5);
            g.bench_function("one", |b| b.iter(|| black_box(2) * 2));
            g.bench_with_input(BenchmarkId::from_parameter(0.5), &0.5, |b, &x| {
                b.iter(|| black_box(x) + 1.0)
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "grp/one");
        assert_eq!(c.results[1].id, "grp/0.5");
        assert!(c.results[0].samples <= 5);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(500).contains("ns"));
        assert!(format_ns(5_000).contains("us"));
        assert!(format_ns(5_000_000).contains("ms"));
        assert!(format_ns(5_000_000_000).contains(" s"));
    }
}
