//! Offline stand-in for `rand_chacha`.
//!
//! Implements an actual ChaCha keystream (8 double-round variant) so the
//! statistical quality matches what the simulator was written against. The
//! `seed_from_u64` key-expansion uses SplitMix64 rather than the real crate's
//! PCG32 fill, so streams are deterministic but NOT bit-compatible with
//! upstream `rand_chacha`.

use rand::RngCore;

/// Re-exports mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::RngCore;

    /// Seedable generators (the `seed_from_u64` subset).
    pub trait SeedableRng: Sized {
        /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
        fn seed_from_u64(seed: u64) -> Self;
    }
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..(Self::ROUNDS / 2) {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for ((out, w), s) in self.block.iter_mut().zip(&working).zip(&self.state) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

impl rand_core::SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter (12, 13) starts at zero; nonce (14, 15) from the seed too.
        let nonce = splitmix64(&mut sm);
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let samples: Vec<f64> = (0..4096).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(samples.iter().any(|&x| x < 0.05));
        assert!(samples.iter().any(|&x| x > 0.95));
    }
}
